package core

import (
	"context"
	"fmt"
	"math/rand/v2"

	"github.com/svgic/svgic/internal/lp"
	"github.com/svgic/svgic/internal/stats"
)

// SamplingMode selects AVG's focal-parameter sampling scheme.
type SamplingMode int

const (
	// SamplingAdvanced maintains per-(item,slot) maximum utility factors and
	// samples proportionally to them (paper §4.4, Observation 3), so every
	// accepted draw assigns at least one display unit. Default.
	SamplingAdvanced SamplingMode = iota
	// SamplingOriginal draws (c, s, α) uniformly as in Algorithm 2; most
	// draws are idle for large k. Kept for the Figure 9(b) ablation.
	SamplingOriginal
)

func (m SamplingMode) String() string {
	if m == SamplingOriginal {
		return "original"
	}
	return "advanced"
}

// AVGOptions configures the randomized AVG solver.
type AVGOptions struct {
	Seed          uint64
	LPMode        LPMode
	LP            lp.RelaxOptions
	Sampling      SamplingMode
	SizeCap       int // SVGIC-ST subgroup size bound M; 0 disables the cap
	MaxIterations int // rounding iteration guard; 0 = automatic
	Repeats       int // run the rounding this many times, keep the best (Corollary 4.1); 0/1 = once
	// Warm, when non-nil, is an incumbent configuration to warm-start from:
	// the LP ascent seeds at its indicator point and the result never scores
	// below it (see WarmStarter). Incumbents that fail validation against the
	// instance (or the size cap) are ignored.
	Warm *Configuration
}

// RoundingStats reports what the rounding phase did.
type RoundingStats struct {
	Iterations    int     // focal-parameter draws
	Rejections    int     // advanced-sampling rejections (stale cached weight)
	Idle          int     // draws that assigned nothing (original sampling)
	FallbackUnits int     // units filled by the greedy completion guard
	LPObjective   float64 // objective of the fractional solution used
}

// SolveAVG runs the full AVG pipeline of the paper: solve the LP relaxation,
// then round with Co-display Subgroup Formation. λ=0 degenerates to the exact
// personalized optimum (the paper's trivial special case).
func SolveAVG(in *Instance, opts AVGOptions) (*Configuration, RoundingStats, error) {
	return solveAVG(context.Background(), in, opts)
}

// solveAVG is the context-aware pipeline behind SolveAVG and AVGSolver: the
// context is checked before the LP relaxation, between the LP and rounding
// phases, and between rounding repeats.
func solveAVG(ctx context.Context, in *Instance, opts AVGOptions) (*Configuration, RoundingStats, error) {
	if err := in.Validate(); err != nil {
		return nil, RoundingStats{}, err
	}
	if err := validateCap(in, opts.SizeCap); err != nil {
		return nil, RoundingStats{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, RoundingStats{}, err
	}
	if in.Lambda == 0 && opts.SizeCap == 0 {
		return PersonalizedConfig(in), RoundingStats{}, nil
	}
	warm := validWarm(in, opts.Warm, opts.SizeCap)
	lpOpts := opts.LP
	if warm != nil {
		lpOpts.Warm = warmIndicator(in, warm)
	}
	f, err := SolveRelaxation(in, opts.LPMode, lpOpts)
	if err != nil {
		return nil, RoundingStats{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, RoundingStats{}, err
	}
	conf, st, err := roundAVG(ctx, in, f, opts)
	if err != nil {
		return nil, RoundingStats{}, err
	}
	if warm != nil {
		conf = betterOf(in, conf, warm)
	}
	return conf, st, nil
}

// RoundAVG rounds a given fractional solution into an SAVG k-Configuration
// with CSF. When opts.Repeats > 1 the rounding is repeated with derived seeds
// and the best configuration under the weighted objective is returned
// (Corollary 4.1).
func RoundAVG(in *Instance, f *Factors, opts AVGOptions) (*Configuration, RoundingStats) {
	conf, st, _ := roundAVG(context.Background(), in, f, opts)
	return conf, st
}

// roundAVG is RoundAVG with a context check between repeats.
func roundAVG(ctx context.Context, in *Instance, f *Factors, opts AVGOptions) (*Configuration, RoundingStats, error) {
	repeats := opts.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var bestConf *Configuration
	var bestStats RoundingStats
	bestVal := -1.0
	for rep := 0; rep < repeats; rep++ {
		if err := ctx.Err(); err != nil {
			return nil, RoundingStats{}, err
		}
		o := opts
		o.Seed = opts.Seed + uint64(rep)*0x9e37
		conf, st := roundOnce(in, f, o)
		if v := Evaluate(in, conf).Weighted(); v > bestVal {
			bestVal, bestConf, bestStats = v, conf, st
		}
	}
	return bestConf, bestStats, nil
}

func validateCap(in *Instance, cap int) error {
	if cap < 0 {
		return fmt.Errorf("core: negative subgroup size cap %d", cap)
	}
	if cap > 0 && in.NumUsers() > in.NumItems*cap {
		return fmt.Errorf("core: size cap M=%d infeasible: %d users exceed m·M=%d per-slot capacity",
			cap, in.NumUsers(), in.NumItems*cap)
	}
	return nil
}

// roundState carries the shared bookkeeping of CSF-based rounding (used by
// both AVG and AVG-D): the partial configuration, per-user item sets, the
// per-item support lists sorted by factor, and the SVGIC-ST counters.
type roundState struct {
	in        *Instance
	aP        [][]float64
	aS        [][]float64
	f         *Factors
	conf      *Configuration
	hasItem   [][]bool
	remaining int
	cap       int
	counts    []int // per c*K+s assignments, allocated iff cap > 0
	support   [][]int
}

func newRoundState(in *Instance, f *Factors, cap int) *roundState {
	n, m, k := in.NumUsers(), in.NumItems, in.K
	rs := &roundState{
		in:        in,
		aP:        in.PrefCoef(nil),
		aS:        in.PairCoef(nil),
		f:         f,
		conf:      NewConfiguration(n, k),
		hasItem:   make([][]bool, n),
		remaining: n * k,
		cap:       cap,
		support:   sortedSupport(f.X, m),
	}
	for u := range rs.hasItem {
		rs.hasItem[u] = make([]bool, m)
	}
	if cap > 0 {
		rs.counts = make([]int, m*k)
	}
	return rs
}

func (rs *roundState) eligible(u, c, s int) bool {
	return rs.conf.Assign[u][s] == Unassigned && !rs.hasItem[u][c]
}

func (rs *roundState) assign(u, c, s int) {
	rs.conf.Assign[u][s] = c
	rs.hasItem[u][c] = true
	rs.remaining--
	if rs.counts != nil {
		rs.counts[c*rs.in.K+s]++
	}
}

// capReached reports whether (c,s) is locked by the SVGIC-ST size bound.
func (rs *roundState) capReached(c, s int) bool {
	return rs.cap > 0 && rs.counts[c*rs.in.K+s] >= rs.cap
}

// trueMax returns the current maximum utility factor among users eligible
// for (c,s) — the quantity x̄*cs maintained by the advanced sampling scheme.
func (rs *roundState) trueMax(c, s int) float64 {
	if rs.capReached(c, s) {
		return 0
	}
	for _, u := range rs.support[c] {
		if rs.eligible(u, c, s) {
			return rs.f.Factor(u, c)
		}
	}
	return 0
}

// csf performs Co-display Subgroup Formation: co-display focal item c at
// focal slot s to every eligible user with factor ≥ α, in descending factor
// order, honouring the SVGIC-ST cap. It returns the number of users assigned.
func (rs *roundState) csf(c, s int, alpha float64) int {
	made := 0
	for _, u := range rs.support[c] {
		if rs.f.Factor(u, c) < alpha {
			break
		}
		if rs.capReached(c, s) {
			break
		}
		if rs.eligible(u, c, s) {
			rs.assign(u, c, s)
			made++
		}
	}
	return made
}

func roundOnce(in *Instance, f *Factors, opts AVGOptions) (*Configuration, RoundingStats) {
	rs := newRoundState(in, f, opts.SizeCap)
	st := RoundingStats{LPObjective: f.Objective}
	rng := stats.NewRand(opts.Seed)
	switch opts.Sampling {
	case SamplingOriginal:
		roundOriginal(rs, rng, opts.MaxIterations, &st)
	default:
		roundAdvanced(rs, rng, opts.MaxIterations, &st)
	}
	if rs.remaining > 0 {
		st.FallbackUnits = completeGreedy(in, rs.conf, rs.aP, rs.aS, rs.cap, rs.counts)
	}
	return rs.conf, st
}

// roundAdvanced is AVG with the advanced focal-parameter sampling scheme
// (Algorithm 4): (c,s) is drawn proportionally to the maintained maximum
// eligible factor and α uniformly below it, so every accepted draw makes
// progress. Cached weights only overestimate (eligibility shrinks
// monotonically), which rejection sampling corrects exactly.
func roundAdvanced(rs *roundState, rng *rand.Rand, maxIter int, st *RoundingStats) {
	m, k := rs.in.NumItems, rs.in.K
	if maxIter <= 0 {
		maxIter = 200*m*k + 1000
	}
	fw := stats.NewFenwick(m * k)
	for c := 0; c < m; c++ {
		if len(rs.support[c]) == 0 {
			continue
		}
		mx := rs.f.Factor(rs.support[c][0], c)
		for s := 0; s < k; s++ {
			fw.Set(c*k+s, mx)
		}
	}
	for iter := 0; rs.remaining > 0 && iter < maxIter; iter++ {
		st.Iterations++
		idx, err := fw.Sample(rng)
		if err != nil {
			break // all weights exhausted; greedy completion takes over
		}
		c, s := idx/k, idx%k
		tm := rs.trueMax(c, s)
		if tm <= 0 {
			fw.Set(idx, 0)
			continue
		}
		if cached := fw.Get(idx); cached > tm {
			fw.Set(idx, tm)
			if rng.Float64() > tm/cached {
				st.Rejections++
				continue
			}
		}
		alpha := rng.Float64() * tm
		rs.csf(c, s, alpha)
		fw.Set(idx, rs.trueMax(c, s))
	}
}

// roundOriginal is the unoptimized sampling of Algorithm 2: (c,s,α) uniform;
// draws with α above every eligible factor are idle.
func roundOriginal(rs *roundState, rng *rand.Rand, maxIter int, st *RoundingStats) {
	m, k := rs.in.NumItems, rs.in.K
	if maxIter <= 0 {
		maxIter = 50*m*k*k + 10000
	}
	for iter := 0; rs.remaining > 0 && iter < maxIter; iter++ {
		st.Iterations++
		c := rng.IntN(m)
		s := rng.IntN(k)
		alpha := rng.Float64()
		if rs.csf(c, s, alpha) == 0 {
			st.Idle++
		}
	}
}

// TrivialRounding is the independent rounding scheme of Algorithm 1 /
// Lemma 3: each display unit independently draws an item with probability
// equal to its utility factor. It ignores both co-display and the
// no-duplication constraint; the returned configuration may therefore be
// invalid. The paper uses it to show independent rounding forfeits a 1/m
// fraction of the optimum; see BenchmarkLemma3IndependentRounding.
func TrivialRounding(in *Instance, f *Factors, seed uint64) *Configuration {
	rng := stats.NewRand(seed)
	n, m, k := in.NumUsers(), in.NumItems, in.K
	conf := NewConfiguration(n, k)
	for u := 0; u < n; u++ {
		for s := 0; s < k; s++ {
			// Draw c with probability x*[u][c][s]; the factors over c sum to
			// one for each (u,s) by LP feasibility.
			target := rng.Float64()
			acc := 0.0
			item := m - 1
			for c := 0; c < m; c++ {
				acc += f.Factor(u, c)
				if target < acc {
					item = c
					break
				}
			}
			conf.Assign[u][s] = item
		}
	}
	return conf
}
