package core

import "testing"

// TestAVGDParallelEquivalence: the parallel candidate evaluation must be
// bit-identical to the serial run (entries are pure; scratches are
// per-worker).
func TestAVGDParallelEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		in := randomInstance(seed, 10, 40, 4, 0.5)
		f, err := SolveRelaxation(in, LPStructured, defaultTestLP())
		if err != nil {
			t.Fatal(err)
		}
		serial, _ := RoundAVGD(in, f, AVGDOptions{R: 1})
		parallel, _ := RoundAVGD(in, f, AVGDOptions{R: 1, Parallel: true})
		for u := range serial.Assign {
			for s := range serial.Assign[u] {
				if serial.Assign[u][s] != parallel.Assign[u][s] {
					t.Fatalf("seed %d: serial and parallel AVG-D diverge at (%d,%d)", seed, u, s)
				}
			}
		}
	}
}

func TestAVGDParallelWithCapAndWeights(t *testing.T) {
	in := randomInstance(9, 12, 40, 4, 0.5)
	f, err := SolveRelaxation(in, LPStructured, defaultTestLP())
	if err != nil {
		t.Fatal(err)
	}
	gamma := []float64{4, 3, 2, 1}
	a, _ := RoundAVGD(in, f, AVGDOptions{R: 1, SizeCap: 4, SlotWeights: gamma})
	b, _ := RoundAVGD(in, f, AVGDOptions{R: 1, SizeCap: 4, SlotWeights: gamma, Parallel: true})
	if err := b.Validate(in); err != nil {
		t.Fatal(err)
	}
	if b.SizeViolations(4) != 0 {
		t.Error("parallel run violated the cap")
	}
	for u := range a.Assign {
		for s := range a.Assign[u] {
			if a.Assign[u][s] != b.Assign[u][s] {
				t.Fatalf("capped/weighted parallel run diverges at (%d,%d)", u, s)
			}
		}
	}
}
