package core

import (
	"math"
	"testing"
)

// solvedSession builds a random instance, solves it with AVG-D (optionally
// capped) and opens a dynamic session on the result.
func solvedSession(t *testing.T, seed uint64, n, m, k, cap int) (*Instance, *DynamicSession) {
	t.Helper()
	in := randomInstance(seed, n, m, k, 0.5)
	conf, _, err := SolveAVGD(in, AVGDOptions{R: 1, SizeCap: cap})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDynamicSession(in, conf, cap)
	if err != nil {
		t.Fatal(err)
	}
	return in, ds
}

// TestDynamicSessionClonesInstance: the session must deep-clone the caller's
// instance — Leave zeroes preference and τ rows in place, which used to
// corrupt the caller's copy (and any engine cache entry sharing it).
func TestDynamicSessionClonesInstance(t *testing.T) {
	in, ds := solvedSession(t, 51, 8, 12, 3, 0)
	wantPref := make([][]float64, in.NumUsers())
	for u := range wantPref {
		wantPref[u] = append([]float64(nil), in.Pref[u]...)
	}
	var wantTau []float64
	for _, e := range in.G.Edges() {
		for c := 0; c < in.NumItems; c++ {
			wantTau = append(wantTau, in.Tau(e[0], e[1], c))
		}
	}
	fpBefore := Fingerprint(in)

	// Leave every user's neighbour-rich core; each Leave zeroes rows on the
	// session's instance.
	if err := ds.Leave(0); err != nil {
		t.Fatal(err)
	}
	if err := ds.Leave(1); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.UpdatePreference(2, make([]float64, in.NumItems)); err != nil {
		t.Fatal(err)
	}

	for u := range wantPref {
		for c, want := range wantPref[u] {
			if in.Pref[u][c] != want {
				t.Fatalf("caller instance mutated: p(%d,%d) = %g, want %g", u, c, in.Pref[u][c], want)
			}
		}
	}
	i := 0
	for _, e := range in.G.Edges() {
		for c := 0; c < in.NumItems; c++ {
			if got := in.Tau(e[0], e[1], c); got != wantTau[i] {
				t.Fatalf("caller instance mutated: τ(%d,%d,%d) = %g, want %g", e[0], e[1], c, got, wantTau[i])
			}
			i++
		}
	}
	if Fingerprint(in) != fpBefore {
		t.Fatal("caller instance fingerprint changed across session events")
	}
}

// TestInstanceCloneIsDeep: mutations of a clone never reach the original,
// including τ vectors and graph structure.
func TestInstanceCloneIsDeep(t *testing.T) {
	in := randomInstance(7, 6, 8, 2, 0.5)
	cl := in.Clone()
	if Fingerprint(cl) != Fingerprint(in) {
		t.Fatal("clone fingerprint differs from original")
	}
	cl.Pref[0][0] += 1
	if in.Pref[0][0] == cl.Pref[0][0] {
		t.Fatal("clone shares preference storage")
	}
	es := in.G.Edges()
	if len(es) == 0 {
		t.Fatal("test instance has no edges")
	}
	u, v := es[0][0], es[0][1]
	if err := cl.SetTau(u, v, 0, in.Tau(u, v, 0)+1); err != nil {
		t.Fatal(err)
	}
	if in.Tau(u, v, 0) == cl.Tau(u, v, 0) {
		t.Fatal("clone shares τ storage")
	}
	cl.G.AddMutualEdge(0, 5)
	if in.G.NumEdges() == cl.G.NumEdges() {
		t.Fatal("clone shares the graph")
	}
}

// TestJoinValidatesTieLengths: short or non-finite tie vectors are rejected
// with an error before any state changes (a short Out slice used to panic
// mid-rebuild).
func TestJoinValidatesTieLengths(t *testing.T) {
	_, ds := solvedSession(t, 52, 6, 8, 2, 0)
	pref := make([]float64, 8)
	activeBefore := len(ds.ActiveUsers())
	usersBefore := ds.Instance().NumUsers()
	valueBefore := ds.Value()

	bad := []FriendTies{
		{0: {Out: []float64{1}}},                              // short Out
		{0: {In: make([]float64, 3)}},                         // short In
		{1: {Out: make([]float64, 9)}},                        // long Out
		{1: {Out: []float64{0, 0, 0, 0, 0, 0, 0, -1}}},        // negative τ
		{2: {In: []float64{math.NaN(), 0, 0, 0, 0, 0, 0, 0}}}, // NaN τ
		{-1: {}}, // negative friend id
		{99: {}}, // out-of-range friend id
	}
	for i, ties := range bad {
		if _, err := ds.Join(pref, ties); err == nil {
			t.Errorf("bad ties %d accepted", i)
		}
	}
	if _, err := ds.Join([]float64{1, math.Inf(1), 0, 0, 0, 0, 0, 0}, nil); err == nil {
		t.Error("non-finite preference accepted")
	}
	if _, err := ds.Join([]float64{-0.5, 0, 0, 0, 0, 0, 0, 0}, nil); err == nil {
		t.Error("negative preference accepted")
	}

	if got := len(ds.ActiveUsers()); got != activeBefore {
		t.Fatalf("failed joins changed active set: %d -> %d", activeBefore, got)
	}
	if got := ds.Instance().NumUsers(); got != usersBefore {
		t.Fatalf("failed joins grew the instance: %d -> %d", usersBefore, got)
	}
	if got := ds.Value(); got != valueBefore {
		t.Fatalf("failed joins changed the value: %g -> %g", valueBefore, got)
	}
	if err := ds.Config().Validate(ds.Instance()); err != nil {
		t.Fatalf("configuration invalid after rejected joins: %v", err)
	}
}

// TestDoubleLeave: leaving twice is an error and leaves the session intact.
func TestDoubleLeave(t *testing.T) {
	_, ds := solvedSession(t, 53, 6, 8, 2, 0)
	if err := ds.Leave(2); err != nil {
		t.Fatal(err)
	}
	if err := ds.Leave(2); err == nil {
		t.Fatal("double leave accepted")
	}
	if got := len(ds.ActiveUsers()); got != 5 {
		t.Fatalf("active users = %d, want 5", got)
	}
}

// TestJoinAfterLeave: a departed shopper's slot history does not block later
// joins; ids keep growing and the configuration stays valid.
func TestJoinAfterLeave(t *testing.T) {
	_, ds := solvedSession(t, 54, 6, 8, 2, 0)
	if err := ds.Leave(1); err != nil {
		t.Fatal(err)
	}
	pref := make([]float64, 8)
	for c := range pref {
		pref[c] = float64(c) / 8
	}
	out := make([]float64, 8)
	for c := range out {
		out[c] = 0.2
	}
	id, err := ds.Join(pref, FriendTies{0: {Out: out, In: out}})
	if err != nil {
		t.Fatal(err)
	}
	if id != 6 {
		t.Fatalf("joined id = %d, want 6", id)
	}
	if got := len(ds.ActiveUsers()); got != 6 {
		t.Fatalf("active users = %d, want 6", got)
	}
	if err := ds.Config().Validate(ds.Instance()); err != nil {
		t.Fatalf("configuration after join-after-leave: %v", err)
	}
	// Joining as a friend of a departed user is rejected: the tie would
	// re-add τ utility on edges Leave zeroed, and the ghost's frozen
	// assignment would earn phantom co-display value.
	if _, err := ds.Join(pref, FriendTies{1: {Out: out}}); err == nil {
		t.Fatal("join tied to departed user accepted")
	}
}

// TestDynamicSessionSTCap: with an SVGIC-ST cap, joins, leaves, preference
// updates and rebalances never grow a subgroup past M.
func TestDynamicSessionSTCap(t *testing.T) {
	const cap = 2
	_, ds := solvedSession(t, 55, 8, 12, 3, cap)
	if got := ds.Config().MaxSubgroupSize(); got > cap {
		t.Fatalf("initial capped solve has subgroup of %d > %d", got, cap)
	}
	if ds.SizeCap() != cap {
		t.Fatalf("SizeCap = %d, want %d", ds.SizeCap(), cap)
	}
	pref := make([]float64, 12)
	for c := range pref {
		pref[c] = 1 - float64(c)/12
	}
	out := make([]float64, 12)
	for c := range out {
		out[c] = 0.4
	}
	for j := 0; j < 3; j++ {
		if _, err := ds.Join(pref, FriendTies{j: {Out: out, In: out}}); err != nil {
			t.Fatal(err)
		}
		if got := ds.Config().MaxSubgroupSize(); got > cap {
			t.Fatalf("after join %d: subgroup of %d > cap %d", j, got, cap)
		}
	}
	if err := ds.Leave(0); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.UpdatePreference(1, pref); err != nil {
		t.Fatal(err)
	}
	ds.Rebalance(3)
	if got := ds.Config().MaxSubgroupSize(); got > cap {
		t.Fatalf("after event stream: subgroup of %d > cap %d", got, cap)
	}
	if err := ds.Config().Validate(ds.Instance()); err != nil {
		t.Fatal(err)
	}
}

// TestUpdatePreference: the event validates its inputs, copies the vector,
// and never decreases the global objective.
func TestUpdatePreference(t *testing.T) {
	_, ds := solvedSession(t, 56, 8, 12, 3, 0)
	if _, err := ds.UpdatePreference(99, make([]float64, 12)); err == nil {
		t.Error("inactive user accepted")
	}
	if _, err := ds.UpdatePreference(0, make([]float64, 5)); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := ds.UpdatePreference(0, []float64{math.NaN(), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("NaN vector accepted")
	}
	if err := ds.Leave(3); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.UpdatePreference(3, make([]float64, 12)); err == nil {
		t.Error("departed user accepted")
	}

	pref := make([]float64, 12)
	for c := range pref {
		pref[c] = float64((c*5)%12) / 12
	}
	before := ds.Value()
	gain, err := ds.UpdatePreference(2, pref)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 0 {
		t.Fatalf("negative best-response gain %g", gain)
	}
	// The caller's slice must be copied, not aliased.
	pref[0] = 1e9
	if ds.Instance().Pref[2][0] == 1e9 {
		t.Fatal("UpdatePreference aliases the caller's slice")
	}
	// Value changed consistently with the new preferences (cannot compare
	// with `before` directly — the vector swap itself moves the objective).
	if math.IsNaN(ds.Value()) || math.IsInf(ds.Value(), 0) {
		t.Fatalf("value corrupted: %g (was %g)", ds.Value(), before)
	}
	if err := ds.Config().Validate(ds.Instance()); err != nil {
		t.Fatal(err)
	}
}

// TestAdopt: a full re-solve's configuration swaps in atomically; an
// incompatible one is rejected.
func TestAdopt(t *testing.T) {
	_, ds := solvedSession(t, 57, 6, 8, 2, 0)
	resolved, _, err := SolveAVGD(ds.Instance(), AVGDOptions{R: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Adopt(resolved); err != nil {
		t.Fatal(err)
	}
	// Adopt clones: mutating the adopted configuration afterwards must not
	// reach the session.
	resolved.Assign[0][0] = Unassigned
	if err := ds.Config().Validate(ds.Instance()); err != nil {
		t.Fatalf("session configuration aliased the adopted one: %v", err)
	}
	if err := ds.Adopt(NewConfiguration(6, 2)); err == nil {
		t.Fatal("incomplete configuration adopted")
	}
}

// TestRestoreDynamicSession: a session reconstructed from persisted state
// (instance, configuration, cap, active set) is indistinguishable from the
// original — including the departed-user bookkeeping NewDynamicSession
// cannot express — and invalid active sets are rejected.
func TestRestoreDynamicSession(t *testing.T) {
	_, ds := solvedSession(t, 58, 8, 10, 2, 0)
	if err := ds.Leave(2); err != nil {
		t.Fatal(err)
	}
	if err := ds.Leave(5); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Join(make([]float64, ds.Instance().NumItems), nil); err != nil {
		t.Fatal(err)
	}

	restored, err := RestoreDynamicSession(ds.Instance(), ds.Config(), ds.SizeCap(), ds.ActiveUsers())
	if err != nil {
		t.Fatal(err)
	}
	// A cold restore recomputes the accumulator with a full Evaluate, which
	// can differ from the live session's incremental chain in final ulps;
	// the durable layers then seed the exact served value via SeedValue.
	if got, want := restored.Value(), ds.Value(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("restored value %v, want %v", got, want)
	}
	if err := restored.SeedValue(ds.Value()); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Value(), ds.Value(); got != want {
		t.Fatalf("seeded restored value %v, want %v", got, want)
	}
	// A seed that disagrees with the state beyond tolerance is corrupt.
	if err := restored.SeedValue(ds.Value() + 1); err == nil {
		t.Fatal("SeedValue accepted a value that disagrees with the state")
	}
	if got, want := restored.ActiveUsers(), ds.ActiveUsers(); len(got) != len(want) {
		t.Fatalf("restored %d active users, want %d", len(got), len(want))
	}
	// The departed users stay departed: re-leaving must fail, exactly as on
	// the original, and a rebalance must not resurrect their utility.
	if err := restored.Leave(2); err == nil {
		t.Fatal("restored session let a departed user leave again")
	}
	before := restored.Value()
	restored.Rebalance(3)
	if restored.Value() < before {
		t.Fatalf("rebalance on restored session lost value: %v -> %v", before, restored.Value())
	}
	// Restore clones: mutating the source instance afterwards must not
	// reach the restored session.
	ds.Instance().Pref[0][0] = 123
	if restored.Instance().Pref[0][0] == 123 {
		t.Fatal("restored session aliases the source instance")
	}

	// Invalid active sets are rejected before any state is built.
	if _, err := RestoreDynamicSession(ds.Instance(), ds.Config(), 0, []int{0, 0}); err == nil {
		t.Fatal("duplicate active id accepted")
	}
	if _, err := RestoreDynamicSession(ds.Instance(), ds.Config(), 0, []int{ds.Instance().NumUsers()}); err == nil {
		t.Fatal("out-of-range active id accepted")
	}
}
