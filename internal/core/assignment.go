package core

import "math"

// MaxAssignment solves the rectangular assignment problem: given gain[s][c]
// for k rows (slots) and m ≥ k columns (items), choose a distinct column per
// row maximizing the total gain. It is the exact single-user best response
// in SVGIC — with every other user fixed, the best reply of user u assigns
// items to slots with gain(s,c) = aP(u,c) + Σ_{v: A(v,s)=c} aS(u,v,c) — and
// is used by the dynamic scenario (Extension F) to admit and rebalance users.
//
// Implementation: Jonker–Volgenant-style shortest augmenting path on the
// cost matrix cost = maxGain − gain, O(k²·m).
func MaxAssignment(gain [][]float64) ([]int, float64) {
	k := len(gain)
	if k == 0 {
		return nil, 0
	}
	m := len(gain[0])
	if m < k {
		return nil, math.Inf(-1)
	}
	// Convert to a minimization problem with non-negative costs.
	maxG := math.Inf(-1)
	for s := range gain {
		for _, g := range gain[s] {
			if g > maxG {
				maxG = g
			}
		}
	}
	cost := make([][]float64, k)
	for s := range cost {
		cost[s] = make([]float64, m)
		for c := 0; c < m; c++ {
			cost[s][c] = maxG - gain[s][c]
		}
	}
	// Potentials and matching (1-based sentinel style of the classic JV/
	// Hungarian shortest-path formulation).
	u := make([]float64, k+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[c] = row matched to column c (1-based), 0 = free
	way := make([]int, m+1)
	for i := 1; i <= k; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, k)
	var total float64
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
			total += gain[p[j]-1][j-1]
		}
	}
	return assign, total
}

// BestResponse computes user u's exact welfare-optimal reassignment against
// the rest of conf (items to slots via MaxAssignment) and applies it in
// place, returning the improvement in the *global* weighted objective.
//
// The per-(slot, item) gain uses the full pair weight τ(u,v,·)+τ(v,u,·):
// moving u in or out of a co-display changes both directions of every pair
// involving u, while pairs between other users are untouched, so the sum of
// these gains over u's row is exactly u's contribution to the objective and
// the move is monotone in total welfare (unlike a selfish reply, which can
// destroy neighbours' incoming utility). cap > 0 blocks (item, slot) units
// whose subgroup is already full without u.
func BestResponse(in *Instance, conf *Configuration, u int, cap int) float64 {
	return bestResponse(in, conf, u, cap, nil)
}

// bestResponse is BestResponse with an optional maintained occupancy slice
// (counts[it*k+s] over ALL rows, ghosts included — the countsFor layout).
// With counts, the capped per-slot sizes are O(1) lookups instead of an
// O(n·k) rescan per slot, and an applied move updates counts in place so the
// caller's incremental bookkeeping stays exact. counts == nil falls back to
// scanning; cap == 0 ignores counts entirely.
func bestResponse(in *Instance, conf *Configuration, u int, cap int, counts []int) float64 {
	k, m := in.K, in.NumItems
	rowGain := func(c, s int) float64 {
		g := (1 - in.Lambda) * in.Pref[u][c]
		for _, v := range in.G.Neighbors(u) {
			if v != u && conf.Assign[v][s] == c {
				g += in.Lambda * in.PairSocial(u, v, c)
			}
		}
		return g
	}
	var before float64
	for s, c := range conf.Assign[u] {
		if c != Unassigned {
			before += rowGain(c, s)
		}
	}
	gain := make([][]float64, k)
	for s := 0; s < k; s++ {
		gain[s] = make([]float64, m)
		var size map[int]int
		if cap > 0 && counts == nil {
			size = make(map[int]int)
			for v := 0; v < in.NumUsers(); v++ {
				if v != u && conf.Assign[v][s] != Unassigned {
					size[conf.Assign[v][s]]++
				}
			}
		}
		for c := 0; c < m; c++ {
			if cap > 0 {
				occ := 0
				if counts != nil {
					occ = counts[c*k+s]
					if conf.Assign[u][s] == c {
						occ-- // counts include u's own row; the cap excludes it
					}
				} else {
					occ = size[c]
				}
				if occ >= cap && conf.Assign[u][s] != c {
					gain[s][c] = capBlocked
					continue
				}
			}
			gain[s][c] = rowGain(c, s)
		}
	}
	assign, after := MaxAssignment(gain)
	if assign == nil {
		return 0
	}
	for s, c := range assign {
		if gain[s][c] <= capBlocked/2 {
			return 0 // no cap-feasible reply exists; keep the incumbent
		}
	}
	if after <= before+1e-12 {
		return 0 // keep the incumbent on ties and numerical noise
	}
	if cap > 0 && counts != nil {
		for s, c := range conf.Assign[u] {
			if c != Unassigned {
				counts[c*k+s]--
			}
		}
		for s, c := range assign {
			counts[c*k+s]++
		}
	}
	copy(conf.Assign[u], assign)
	return after - before
}

// capBlocked is the sentinel gain of a display unit whose subgroup is full;
// finite so the assignment arithmetic stays NaN-free, yet dominated by any
// real utility.
const capBlocked = -1e12
