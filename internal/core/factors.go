package core

import (
	"fmt"
	"sort"

	"github.com/svgic/svgic/internal/lp"
)

// LPMode selects how AVG obtains the fractional utility factors.
type LPMode int

const (
	// LPStructured solves the condensed LP_SIMP with the scalable structured
	// solver (block-coordinate ascent + supergradient polish). Default.
	LPStructured LPMode = iota
	// LPSimplexCondensed solves LP_SIMP exactly with the dense simplex.
	// Exact but only viable for small models.
	LPSimplexCondensed
	// LPSimplexFull solves the full per-slot LP_SVGIC exactly with the dense
	// simplex — the path *without* the advanced LP transformation
	// (Observation 2), kept for the Figure 9(b) ablation. The model is k
	// times larger than LP_SIMP.
	LPSimplexFull
)

func (m LPMode) String() string {
	switch m {
	case LPStructured:
		return "structured"
	case LPSimplexCondensed:
		return "simplex-condensed"
	case LPSimplexFull:
		return "simplex-full"
	}
	return "unknown"
}

// Factors holds the fractional solution of the SVGIC relaxation in condensed
// form: X[u][c] = x̄ with Σ_c X[u][c] = k; the per-slot utility factor of the
// full LP is x*[u][c][s] = X[u][c]/k for every slot (Observation 2).
type Factors struct {
	X         [][]float64
	K         int
	Objective float64 // LP objective of X under the instance's λ-weighted coefficients
}

// Factor returns the per-slot utility factor x*[u][c][s] (independent of s).
func (f *Factors) Factor(u, c int) float64 { return f.X[u][c] / float64(f.K) }

// FactorsFromCondensed wraps an externally supplied condensed fractional
// solution (for example the paper's Table 6 values in the golden tests),
// computing its LP objective under the instance's coefficients.
func FactorsFromCondensed(in *Instance, X [][]float64) *Factors {
	rx := in.Relaxation()
	return &Factors{X: X, K: in.K, Objective: rx.Objective(X)}
}

// SolveRelaxation computes utility factors for the instance with the chosen
// LP mode. For LPStructured, lpOpts tunes the solver; the exact modes ignore
// it.
func SolveRelaxation(in *Instance, mode LPMode, lpOpts lp.RelaxOptions) (*Factors, error) {
	rx := in.Relaxation()
	switch mode {
	case LPStructured:
		X, obj := rx.Solve(lpOpts)
		return &Factors{X: X, K: in.K, Objective: obj}, nil
	case LPSimplexCondensed:
		X, obj, err := rx.SolveExact()
		if err != nil {
			return nil, fmt.Errorf("core: condensed simplex relaxation: %w", err)
		}
		return &Factors{X: X, K: in.K, Objective: obj}, nil
	case LPSimplexFull:
		return solveFullRelaxation(in)
	}
	return nil, fmt.Errorf("core: unknown LP mode %d", mode)
}

// solveFullRelaxation solves the full per-slot LP_SVGIC with the dense
// simplex and condenses the per-slot solution back to x̄[u][c] = Σ_s x[u][c][s]
// (the reverse direction of Observation 2's construction).
func solveFullRelaxation(in *Instance) (*Factors, error) {
	fm := BuildFullModel(in)
	sol, err := lp.SolveSimplex(fm.P)
	if err != nil {
		return nil, fmt.Errorf("core: full simplex relaxation: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: full simplex relaxation status %v", sol.Status)
	}
	n, m := in.NumUsers(), in.NumItems
	X := make([][]float64, n)
	for u := 0; u < n; u++ {
		X[u] = make([]float64, m)
		for c := 0; c < m; c++ {
			var s float64
			for slot := 0; slot < in.K; slot++ {
				s += sol.X[fm.XVar(u, c, slot)]
			}
			if s > 1 {
				s = 1 // guard against simplex round-off above the bound
			}
			X[u][c] = s
		}
	}
	rx := in.Relaxation()
	return &Factors{X: X, K: in.K, Objective: rx.Objective(X)}, nil
}

// sortedSupport returns, for every item c, the users with X[u][c] > eps
// sorted by descending factor (ties by ascending user id, keeping every run
// deterministic).
func sortedSupport(X [][]float64, m int) [][]int {
	const eps = 1e-12
	support := make([][]int, m)
	for c := 0; c < m; c++ {
		var us []int
		for u := range X {
			if X[u][c] > eps {
				us = append(us, u)
			}
		}
		sort.Slice(us, func(a, b int) bool {
			if X[us[a]][c] != X[us[b]][c] {
				return X[us[a]][c] > X[us[b]][c]
			}
			return us[a] < us[b]
		})
		support[c] = us
	}
	return support
}
