package core

// Warm-start support for the AVG / AVG-D pipelines: drift repair re-solves a
// live session whose incumbent configuration is already near-optimal, so the
// solvers accept an incumbent to (a) seed the LP relaxation's ascent from the
// incumbent's indicator point instead of cold random restarts and (b) lower-
// bound the result — the rounded configuration is swapped for the incumbent
// when the incumbent still scores higher, so a warm-started solve never
// returns something worse than what the session already has.

// WarmStarter is optionally implemented by solvers that can seed a solve
// from an incumbent configuration. WarmStart returns a NEW solver biased by
// the incumbent (the receiver is never mutated — solvers are shared across
// worker pools), or nil when the solver cannot use the incumbent (wrong
// shape for its parameters, unsupported mode). Warm-started solvers are
// deliberately not CacheKeyers: their results depend on the incumbent, so
// they must never be served from or stored into keyed result caches.
type WarmStarter interface {
	WarmStart(conf *Configuration) Solver
}

// WarmStart implements WarmStarter: the returned AVG solver seeds its LP
// ascent from conf and keeps conf as the floor of the rounding result.
func (s *AVGSolver) WarmStart(conf *Configuration) Solver {
	opts := s.Opts
	opts.Warm = conf.Clone()
	return &AVGSolver{Opts: opts}
}

// WarmStart implements WarmStarter (see AVGSolver.WarmStart).
func (s *AVGDSolver) WarmStart(conf *Configuration) Solver {
	opts := s.Opts
	opts.Warm = conf.Clone()
	return &AVGDSolver{Opts: opts}
}

// validWarm screens an incumbent at the solve boundary: nil unless it is a
// complete, valid configuration of THIS instance that also respects the size
// cap. Options travel through registries and serialization layers, so a
// stale or mis-dimensioned incumbent is silently ignored rather than failing
// the solve — a warm start is an optimization, never a correctness input.
func validWarm(in *Instance, warm *Configuration, cap int) *Configuration {
	if warm == nil || warm.Validate(in) != nil {
		return nil
	}
	if cap > 0 && warm.MaxSubgroupSize() > cap {
		return nil
	}
	return warm
}

// warmIndicator lifts a configuration to its fractional indicator point:
// x[u][c] = 1 iff u holds item c. Rows of a complete configuration sum to
// exactly K (items are unique per user), so the point is LP-feasible as-is.
func warmIndicator(in *Instance, conf *Configuration) [][]float64 {
	X := make([][]float64, in.NumUsers())
	for u := range X {
		row := make([]float64, in.NumItems)
		for _, it := range conf.Assign[u] {
			if it != Unassigned {
				row[it] = 1
			}
		}
		X[u] = row
	}
	return X
}

// warmRows restricts a whole-instance incumbent to a sub-instance's users:
// row i of the result is the incumbent row of original user orig[i]. The
// component decomposition inside solveAVGD uses it so each sub-solve warms
// from its own slice of the incumbent.
func warmRows(conf *Configuration, orig []int, k int) *Configuration {
	sub := NewConfiguration(len(orig), k)
	for i, ou := range orig {
		copy(sub.Assign[i], conf.Assign[ou])
	}
	return sub
}

// betterOf returns the incumbent (cloned) when it still beats the freshly
// rounded configuration under the weighted objective, else the rounded one —
// the "best-known bound" half of warm-starting: a repair solve seeded with
// the session's incumbent can only move forward.
func betterOf(in *Instance, rounded, warm *Configuration) *Configuration {
	if Evaluate(in, warm).Weighted() > Evaluate(in, rounded).Weighted() {
		return warm.Clone()
	}
	return rounded
}
