package core

// Solver is the common interface of every SVGIC configuration algorithm —
// AVG, AVG-D, the baselines and the exact IP — as consumed by the experiment
// harness and the public API.
type Solver interface {
	// Name identifies the algorithm in experiment output (e.g. "AVG", "PER").
	Name() string
	// Solve produces a complete, valid SAVG k-Configuration.
	Solve(in *Instance) (*Configuration, error)
}

// AVGSolver adapts SolveAVG to the Solver interface.
type AVGSolver struct {
	Opts AVGOptions
	// Stats holds the rounding statistics of the most recent Solve.
	Stats RoundingStats
}

// Name implements Solver.
func (s *AVGSolver) Name() string { return "AVG" }

// Solve implements Solver.
func (s *AVGSolver) Solve(in *Instance) (*Configuration, error) {
	conf, st, err := SolveAVG(in, s.Opts)
	s.Stats = st
	return conf, err
}

// AVGDSolver adapts SolveAVGD to the Solver interface.
type AVGDSolver struct {
	Opts AVGDOptions
	// Stats holds the rounding statistics of the most recent Solve.
	Stats RoundingStats
}

// Name implements Solver.
func (s *AVGDSolver) Name() string { return "AVG-D" }

// Solve implements Solver.
func (s *AVGDSolver) Solve(in *Instance) (*Configuration, error) {
	conf, st, err := SolveAVGD(in, s.Opts)
	s.Stats = st
	return conf, err
}
