package core

import (
	"context"
	"time"
)

// Solver is the common interface of every SVGIC configuration algorithm —
// AVG, AVG-D, the baselines and the exact IP — as consumed by the engine,
// the HTTP server, the experiment harness and the public API.
//
// Solve must honour the context: on a context that is already done it
// returns ctx.Err() promptly without touching the instance, and long-running
// solvers poll the context at phase boundaries (the IP branch-and-bound polls
// between nodes). Implementations must be safe for concurrent use — the
// engine shares one solver instance across its worker pool; all per-run
// state and statistics travel in the returned Solution, never on the solver.
type Solver interface {
	// Name identifies the algorithm in experiment and serving output
	// (e.g. "AVG", "PER").
	Name() string
	// Solve produces a complete, valid SAVG k-Configuration wrapped in its
	// Solution envelope.
	Solve(ctx context.Context, in *Instance) (*Solution, error)
}

// CacheKeyer is optionally implemented by solvers whose caching identity is
// finer than their Name — e.g. the same algorithm under different parameters.
// Result caches and request coalescers use CacheKey (falling back to Name) to
// keep results of distinct solver configurations from aliasing.
type CacheKeyer interface {
	// CacheKey returns a stable string identifying the algorithm AND its
	// parameters.
	CacheKey() string
}

// ComponentSafe is optionally implemented by solvers whose results are
// preserved under connected-component decomposition: solving each component
// of the social network independently and merging loses nothing. Solvers
// that couple users beyond social edges (whole-group itemsets, global
// clustering, SVGIC-ST size caps) must not report true. Solvers without the
// method are treated as unsafe and solved whole.
type ComponentSafe interface {
	DecomposeSafe() bool
}

// AVGSolver adapts the randomized AVG pipeline to the Solver interface.
// Stateless: safe for concurrent use.
type AVGSolver struct {
	Opts AVGOptions
}

// Name implements Solver.
func (s *AVGSolver) Name() string { return "AVG" }

// Solve implements Solver.
func (s *AVGSolver) Solve(ctx context.Context, in *Instance) (*Solution, error) {
	start := time.Now()
	conf, st, err := solveAVG(ctx, in, s.Opts)
	if err != nil {
		return nil, err
	}
	sol := NewSolution(s.Name(), in, conf, start)
	sol.Rounding = &st
	return sol, nil
}

// DecomposeSafe implements ComponentSafe: the SAVG objective couples users
// only across social edges, but an SVGIC-ST size cap binds subgroups across
// components (they are keyed by item and slot over all users).
func (s *AVGSolver) DecomposeSafe() bool { return s.Opts.SizeCap == 0 }

// AVGDSolver adapts the deterministic AVG-D pipeline to the Solver
// interface. Stateless: safe for concurrent use.
type AVGDSolver struct {
	Opts AVGDOptions
}

// Name implements Solver.
func (s *AVGDSolver) Name() string { return "AVG-D" }

// Solve implements Solver.
func (s *AVGDSolver) Solve(ctx context.Context, in *Instance) (*Solution, error) {
	start := time.Now()
	conf, st, components, err := solveAVGD(ctx, in, s.Opts)
	if err != nil {
		return nil, err
	}
	sol := NewSolution(s.Name(), in, conf, start)
	sol.Rounding = &st
	// Uncapped disconnected instances are decomposed inside the pipeline;
	// report the honest component count.
	sol.Components = components
	return sol, nil
}

// DecomposeSafe implements ComponentSafe (see AVGSolver.DecomposeSafe).
func (s *AVGDSolver) DecomposeSafe() bool { return s.Opts.SizeCap == 0 }
