package core

import "github.com/svgic/svgic/internal/lp"

// FullModel is the explicit per-slot LP/IP model of SVGIC from Section 3.3 of
// the paper, with the aggregate variables x_u^c and y_e^c substituted out:
//
//	maximize  Σ_{u,c,s} aP[u][c]·x[u][c][s] + Σ_{e,c,s} aS[e][c]·y[e][c][s]
//	s.t.      Σ_c x[u][c][s] = 1            ∀u,s   (one item per slot)
//	          Σ_s x[u][c][s] ≤ 1            ∀u,c   (no duplication)
//	          y[e][c][s] ≤ x[u][c][s]       ∀e=(u,v),c,s
//	          y[e][c][s] ≤ x[v][c][s]       ∀e=(u,v),c,s
//	          x, y ≥ 0 (binary x in the IP; y is automatically integral)
//
// Its LP relaxation is exactly LP_SVGIC; with integral x it is the paper's IP.
// The MIP branch-and-bound solver branches on the x variables only.
type FullModel struct {
	P        *lp.Problem
	NumUsers int
	NumItems int
	K        int
	numX     int
}

// XVar returns the column index of x[u][c][s].
func (fm *FullModel) XVar(u, c, s int) int {
	return (u*fm.NumItems+c)*fm.K + s
}

// YVar returns the column index of y[e][c][s].
func (fm *FullModel) YVar(e, c, s int) int {
	return fm.numX + (e*fm.NumItems+c)*fm.K + s
}

// NumXVars returns the number of x variables (the binary block in the IP).
func (fm *FullModel) NumXVars() int { return fm.numX }

// BuildFullModel materializes the per-slot model for the instance, using the
// λ-weighted coefficients. Intended for small instances: the variable count
// is (n + |pairs|)·m·k.
func BuildFullModel(in *Instance) *FullModel {
	n, m, k := in.NumUsers(), in.NumItems, in.K
	pairs := in.G.Pairs()
	fm := &FullModel{NumUsers: n, NumItems: m, K: k, numX: n * m * k}
	numY := len(pairs) * m * k
	p := lp.NewProblem(fm.numX + numY)
	fm.P = p

	aP := in.PrefCoef(nil)
	aS := in.PairCoef(nil)
	for u := 0; u < n; u++ {
		for c := 0; c < m; c++ {
			for s := 0; s < k; s++ {
				p.SetObj(fm.XVar(u, c, s), aP[u][c])
			}
		}
	}
	for e := range pairs {
		for c := 0; c < m; c++ {
			for s := 0; s < k; s++ {
				p.SetObj(fm.YVar(e, c, s), aS[e][c])
			}
		}
	}
	// One item per (user, slot).
	for u := 0; u < n; u++ {
		for s := 0; s < k; s++ {
			idx := make([]int, m)
			coef := make([]float64, m)
			for c := 0; c < m; c++ {
				idx[c] = fm.XVar(u, c, s)
				coef[c] = 1
			}
			p.MustAddConstraint(idx, coef, lp.EQ, 1)
		}
	}
	// No duplication per (user, item).
	for u := 0; u < n; u++ {
		for c := 0; c < m; c++ {
			idx := make([]int, k)
			coef := make([]float64, k)
			for s := 0; s < k; s++ {
				idx[s] = fm.XVar(u, c, s)
				coef[s] = 1
			}
			p.MustAddConstraint(idx, coef, lp.LE, 1)
		}
	}
	// Co-display linking.
	for e, pr := range pairs {
		for c := 0; c < m; c++ {
			for s := 0; s < k; s++ {
				y := fm.YVar(e, c, s)
				p.MustAddConstraint([]int{y, fm.XVar(pr[0], c, s)}, []float64{1, -1}, lp.LE, 0)
				p.MustAddConstraint([]int{y, fm.XVar(pr[1], c, s)}, []float64{1, -1}, lp.LE, 0)
			}
		}
	}
	return fm
}

// ConfigurationFromX decodes a 0/1 x-vector of the full model into a
// Configuration (the item with the largest x per (user, slot), which for an
// integral solution is the assigned item).
func (fm *FullModel) ConfigurationFromX(x []float64) *Configuration {
	conf := NewConfiguration(fm.NumUsers, fm.K)
	for u := 0; u < fm.NumUsers; u++ {
		for s := 0; s < fm.K; s++ {
			best, bestV := Unassigned, 0.0
			for c := 0; c < fm.NumItems; c++ {
				if v := x[fm.XVar(u, c, s)]; v > bestV {
					bestV = v
					best = c
				}
			}
			conf.Assign[u][s] = best
		}
	}
	return conf
}
