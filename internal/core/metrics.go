package core

import (
	"github.com/svgic/svgic/internal/graph"
)

// Subgroup-level metrics of Section 6.5 of the paper: how a configuration's
// implicit per-slot partitions relate to the social network.

// SubgroupMetrics aggregates the per-slot partition statistics.
type SubgroupMetrics struct {
	IntraPct          float64 // friend pairs co-displayed at a slot / (pairs × slots)
	InterPct          float64 // complement of IntraPct
	NormalizedDensity float64 // size-weighted subgroup density / network density
	CoDisplayPct      float64 // friend pairs directly co-displayed at ≥1 slot
	AlonePct          float64 // display units shown to a singleton subgroup
	MeanSubgroupSize  float64 // mean subgroup size over slots
}

// ComputeSubgroupMetrics derives the Section 6.5 statistics from a
// configuration. Subgroups of size one are excluded from the density average
// (a singleton has no internal pairs); if every subgroup is a singleton the
// normalized density is zero.
func ComputeSubgroupMetrics(in *Instance, conf *Configuration) SubgroupMetrics {
	var m SubgroupMetrics
	n := in.NumUsers()
	pairs := in.G.Pairs()
	numPairs := len(pairs)
	k := conf.K

	var intra int
	coDisplayed := make([]bool, numPairs)
	for s := 0; s < k; s++ {
		for e, p := range pairs {
			cu := conf.Assign[p[0]][s]
			if cu != Unassigned && cu == conf.Assign[p[1]][s] {
				intra++
				coDisplayed[e] = true
			}
		}
	}
	if numPairs > 0 && k > 0 {
		m.IntraPct = float64(intra) / float64(numPairs*k)
		m.InterPct = 1 - m.IntraPct
	}
	var coCount int
	for _, b := range coDisplayed {
		if b {
			coCount++
		}
	}
	if numPairs > 0 {
		m.CoDisplayPct = float64(coCount) / float64(numPairs)
	}

	baseDensity := graph.Density(in.G)
	var densityWeighted, densityWeight float64
	var aloneUnits, groupCount, groupSizeSum int
	for s := 0; s < k; s++ {
		for _, members := range conf.SubgroupsAt(s) {
			groupCount++
			groupSizeSum += len(members)
			if len(members) == 1 {
				aloneUnits++
				continue
			}
			d := graph.SubsetDensity(in.G, members)
			densityWeighted += d * float64(len(members))
			densityWeight += float64(len(members))
		}
	}
	if densityWeight > 0 && baseDensity > 0 {
		m.NormalizedDensity = (densityWeighted / densityWeight) / baseDensity
	}
	if n > 0 && k > 0 {
		m.AlonePct = float64(aloneUnits) / float64(n*k)
	}
	if groupCount > 0 {
		m.MeanSubgroupSize = float64(groupSizeSum) / float64(groupCount)
	}
	return m
}

// SubgroupEditDistance returns the total edit distance between the partitions
// at consecutive slots (Extension E): each friend pair co-displayed at slot s
// but separated at slot s+1 (or vice versa) contributes 1.
func SubgroupEditDistance(in *Instance, conf *Configuration) int {
	var total int
	pairs := in.G.Pairs()
	same := func(s, e int) bool {
		p := pairs[e]
		cu := conf.Assign[p[0]][s]
		return cu != Unassigned && cu == conf.Assign[p[1]][s]
	}
	for s := 0; s+1 < conf.K; s++ {
		for e := range pairs {
			if same(s, e) != same(s+1, e) {
				total++
			}
		}
	}
	return total
}
