package core

import (
	"math"
	"testing"

	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
)

// multiComponentInstance builds a deterministic random instance whose social
// network is a disjoint union of `blocks` dense Erdős–Rényi blocks of
// blockN users each.
func multiComponentInstance(seed uint64, blocks, blockN, m, k int, lambda float64) *Instance {
	r := stats.NewRand(seed)
	n := blocks * blockN
	g := graph.New(n)
	for b := 0; b < blocks; b++ {
		off := b * blockN
		for i := 0; i < blockN; i++ {
			for j := i + 1; j < blockN; j++ {
				if r.Float64() < 0.6 {
					g.AddMutualEdge(off+i, off+j)
				}
			}
		}
	}
	in := NewInstance(g, m, k, lambda)
	for u := 0; u < n; u++ {
		for c := 0; c < m; c++ {
			in.SetPref(u, c, r.Float64())
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			for c := 0; c < m; c++ {
				if r.Float64() < 0.5 {
					must(in.SetTau(u, v, c, 0.6*r.Float64()))
				}
			}
		}
	}
	return in
}

func TestComponentDecomposeConnectedIsIdentity(t *testing.T) {
	in := randomInstance(3, 6, 10, 3, 0.5)
	if len(graph.ComponentDecompose(in.G)) > 1 {
		t.Skip("random instance happened to be disconnected")
	}
	subs, origs := ComponentDecompose(in)
	if len(subs) != 1 || subs[0] != in {
		t.Fatalf("connected instance not returned as-is: %d subs", len(subs))
	}
	for u, o := range origs[0] {
		if u != o {
			t.Fatalf("identity mapping broken at %d -> %d", u, o)
		}
	}
}

func TestComponentDecomposePartitionsUsers(t *testing.T) {
	in := multiComponentInstance(7, 5, 4, 12, 3, 0.5)
	subs, origs := ComponentDecompose(in)
	if len(subs) < 5 {
		t.Fatalf("got %d components, want ≥ 5 (blocks may split further)", len(subs))
	}
	seen := make([]bool, in.NumUsers())
	prevMin := -1
	for i, orig := range origs {
		if len(orig) != subs[i].NumUsers() {
			t.Fatalf("component %d: %d ids for %d users", i, len(orig), subs[i].NumUsers())
		}
		for j, o := range orig {
			if seen[o] {
				t.Fatalf("user %d in two components", o)
			}
			seen[o] = true
			if j > 0 && orig[j-1] >= o {
				t.Fatalf("component %d ids not ascending", i)
			}
		}
		if orig[0] <= prevMin {
			t.Fatalf("components not ordered by smallest user")
		}
		prevMin = orig[0]
		// Sub-instance carries the right utilities back.
		for j, o := range orig {
			for c := 0; c < in.NumItems; c++ {
				if subs[i].Pref[j][c] != in.Pref[o][c] {
					t.Fatalf("component %d: pref mismatch for user %d", i, o)
				}
			}
		}
	}
	for u, ok := range seen {
		if !ok {
			t.Fatalf("user %d missing from decomposition", u)
		}
	}
}

// TestObjectiveAdditiveAcrossComponents is the correctness core of the batch
// engine: for ANY configuration, the whole-instance objective equals the sum
// of the per-component objectives of its restrictions, because social pairs
// never cross components.
func TestObjectiveAdditiveAcrossComponents(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		in := multiComponentInstance(seed, 4, 5, 15, 3, 0.45)
		r := stats.NewRand(seed * 101)
		conf := NewConfiguration(in.NumUsers(), in.K)
		for u := 0; u < in.NumUsers(); u++ {
			perm := r.Perm(in.NumItems)
			copy(conf.Assign[u], perm[:in.K])
		}
		subs, origs := ComponentDecompose(in)
		var sum float64
		for i, sub := range subs {
			part := NewConfiguration(sub.NumUsers(), sub.K)
			for j, o := range origs[i] {
				copy(part.Assign[j], conf.Assign[o])
			}
			sum += Evaluate(sub, part).Weighted()
		}
		whole := Evaluate(in, conf).Weighted()
		if math.Abs(whole-sum) > 1e-9 {
			t.Errorf("seed %d: whole=%.12f Σ components=%.12f", seed, whole, sum)
		}
	}
}

// TestSolveAVGDComponentEquivalence: SolveAVGD on a disconnected instance is
// bit-identical to solving each component and merging — the property the
// concurrent engine relies on.
func TestSolveAVGDComponentEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		in := multiComponentInstance(seed, 4, 6, 20, 3, 0.5)
		whole, _, err := SolveAVGD(in, AVGDOptions{})
		if err != nil {
			t.Fatal(err)
		}
		subs, origs := ComponentDecompose(in)
		parts := make([]*Configuration, len(subs))
		for i, sub := range subs {
			c, _, err := SolveAVGD(sub, AVGDOptions{})
			if err != nil {
				t.Fatal(err)
			}
			parts[i] = c
		}
		merged := MergeConfigurations(in.NumUsers(), in.K, parts, origs)
		for u := range whole.Assign {
			for s := range whole.Assign[u] {
				if whole.Assign[u][s] != merged.Assign[u][s] {
					t.Fatalf("seed %d: configurations diverge at (%d,%d)", seed, u, s)
				}
			}
		}
		ow, om := Evaluate(in, whole).Weighted(), Evaluate(in, merged).Weighted()
		if math.Abs(ow-om) > 1e-12 {
			t.Errorf("seed %d: objective diverges: %.12f vs %.12f", seed, ow, om)
		}
	}
}

// TestSolveAVGDCappedSolvesWhole: the ST size cap couples components (users
// of different components seeing the same item at the same slot share one
// subgroup), so capped instances must respect the cap globally.
func TestSolveAVGDCappedSolvesWhole(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		in := multiComponentInstance(seed, 3, 4, 14, 2, 0.5)
		cap := 2
		conf, _, err := SolveAVGD(in, AVGDOptions{SizeCap: cap})
		if err != nil {
			t.Fatal(err)
		}
		if v := conf.SizeViolations(cap); v != 0 {
			t.Errorf("seed %d: %d size violations at cap %d", seed, v, cap)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := func() *Instance { return multiComponentInstance(11, 3, 4, 8, 2, 0.5) }
	in := base()
	if Fingerprint(in) != Fingerprint(base()) {
		t.Fatal("fingerprint not deterministic")
	}
	mut := base()
	mut.SetPref(0, 0, mut.Pref[0][0]+0.25)
	if Fingerprint(mut) == Fingerprint(in) {
		t.Error("preference change not reflected")
	}
	mut = base()
	mut.Lambda += 0.1
	if Fingerprint(mut) == Fingerprint(in) {
		t.Error("λ change not reflected")
	}
	mut = base()
	mut.K--
	if Fingerprint(mut) == Fingerprint(in) {
		t.Error("k change not reflected")
	}
	mut = base()
	var edge [2]int
	for _, e := range mut.G.Edges() {
		edge = e
		break
	}
	must(mut.SetTau(edge[0], edge[1], 0, mut.Tau(edge[0], edge[1], 0)+0.5))
	if Fingerprint(mut) == Fingerprint(in) {
		t.Error("τ change not reflected")
	}
	mut = base()
	mut.G.AddMutualEdge(0, mut.NumUsers()-1)
	if Fingerprint(mut) == Fingerprint(in) {
		t.Error("edge change not reflected")
	}
}
