package core

import (
	"fmt"
	"testing"

	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
)

// benchDynamicSession builds an n-user dynamic session on a sparse
// small-world graph (degree ≈ 8) with a greedy top-k starting configuration
// — large enough that the difference between the O(1) accumulator and a full
// Evaluate rescan dominates, cheap enough to set up without a solver run.
func benchDynamicSession(tb testing.TB, n, m, k int) *DynamicSession {
	tb.Helper()
	r := stats.NewRand(uint64(n))
	g := graph.WattsStrogatz(n, 8, 0.1, r)
	in := NewInstance(g, m, k, 0.5)
	for u := 0; u < n; u++ {
		for c := 0; c < m; c++ {
			in.SetPref(u, c, r.Float64())
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			for c := 0; c < m; c++ {
				if r.Float64() < 0.3 {
					must(in.SetTau(u, v, c, 0.6*r.Float64()))
				}
			}
		}
	}
	conf := NewConfiguration(n, k)
	for u := 0; u < n; u++ {
		taken := make([]bool, m)
		for s := 0; s < k; s++ {
			best, bestVal := -1, -1.0
			for c := 0; c < m; c++ {
				if !taken[c] && in.Pref[u][c] > bestVal {
					best, bestVal = c, in.Pref[u][c]
				}
			}
			taken[best] = true
			conf.Assign[u][s] = best
		}
	}
	ds, err := NewDynamicSession(in, conf, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

var benchValueSink float64

// BenchmarkDynamicEvent measures per-event cost on the dynamic hot path:
// apply one updatePreference event, then read the session value. The
// incremental variant reads the maintained accumulator (what the serving
// path does); the fullEvaluate variant recomputes the objective with a full
// Evaluate rescan after every event (what the serving path did before the
// accumulator existed). The gap between the two is the win the incremental
// bookkeeping buys at each session size.
func BenchmarkDynamicEvent(b *testing.B) {
	const m, k = 50, 3
	for _, n := range []int{1000, 10000} {
		ds := benchDynamicSession(b, n, m, k)
		r := stats.NewRand(uint64(n) + 1)
		prefs := make([][]float64, 16)
		for i := range prefs {
			prefs[i] = make([]float64, m)
			for c := range prefs[i] {
				prefs[i][c] = r.Float64()
			}
		}
		b.Run(fmt.Sprintf("incremental/users=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ds.UpdatePreference(i%n, prefs[i%len(prefs)]); err != nil {
					b.Fatal(err)
				}
				benchValueSink = ds.Value()
			}
		})
		b.Run(fmt.Sprintf("fullEvaluate/users=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ds.UpdatePreference(i%n, prefs[i%len(prefs)]); err != nil {
					b.Fatal(err)
				}
				benchValueSink = Evaluate(ds.Instance(), ds.Config()).Weighted()
			}
		})
	}
}
