package core

import (
	"math"
	"testing"

	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
)

func TestTheoremOneGroupGap(t *testing.T) {
	for _, n := range []int{3, 6, 10} {
		in, opt, groupOpt := TheoremOneGroupGap(n, 2, 0.5)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		if math.Abs(opt/groupOpt-float64(n)) > 1e-9 {
			t.Errorf("n=%d: OPT/OPT_G = %v, want %v", n, opt/groupOpt, n)
		}
		// The claimed optimum is achievable: the personalized configuration
		// hits it exactly (disjoint preferred sets, no social edges).
		conf := PersonalizedConfig(in)
		if got := Evaluate(in, conf).Weighted(); math.Abs(got-opt) > 1e-9 {
			t.Errorf("n=%d: personalized achieves %v, want %v", n, got, opt)
		}
	}
}

func TestTheoremOnePersonalGap(t *testing.T) {
	const n, k, lambda, eps = 6, 2, 0.5, 0.01
	in, common, personal := TheoremOnePersonalGap(n, k, lambda, eps)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// The all-common configuration achieves the claimed bound: display user
	// 0's private items (c = j·n) to everyone at slot j.
	conf := NewConfiguration(n, k)
	for u := 0; u < n; u++ {
		for s := 0; s < k; s++ {
			conf.Assign[u][s] = s * n
		}
	}
	if err := conf.Validate(in); err != nil {
		t.Fatal(err)
	}
	if got := Evaluate(in, conf).Weighted(); math.Abs(got-common) > 1e-9 {
		t.Errorf("common config achieves %v, want %v", got, common)
	}
	// The personalized approach scores exactly its claimed value.
	per := PersonalizedConfig(in)
	if got := Evaluate(in, per).Weighted(); math.Abs(got-personal) > 1e-6 {
		t.Errorf("personalized achieves %v, want %v", got, personal)
	}
	// The gap is Θ(n).
	if ratio := common / personal; ratio < float64(n-1)/2 {
		t.Errorf("gap ratio = %v, want ≥ (n-1)/2", ratio)
	}
}

func randomFormula(seed uint64, numVars, numClauses int) []Clause {
	r := stats.NewRand(seed)
	cls := make([]Clause, numClauses)
	for i := range cls {
		for t := 0; t < 3; t++ {
			cls[i][t] = Literal{Var: r.IntN(numVars), Negated: r.IntN(2) == 1}
		}
	}
	return cls
}

func TestE3SATReductionObjective(t *testing.T) {
	// Lemma 2's sufficient direction: for any truth assignment, the
	// constructed configuration scores exactly 2·satisfied + 6·clauses
	// (λ=1, so weighted = social).
	for seed := uint64(1); seed <= 8; seed++ {
		numVars := 3 + int(seed%3)
		numClauses := 2 + int(seed%4)
		red, err := BuildE3SATReduction(numVars, randomFormula(seed, numVars, numClauses))
		if err != nil {
			t.Fatal(err)
		}
		if err := red.In.Validate(); err != nil {
			t.Fatal(err)
		}
		wantUsers := numClauses + 6*numClauses + numVars
		if red.In.NumUsers() != wantUsers {
			t.Fatalf("users = %d, want %d", red.In.NumUsers(), wantUsers)
		}
		// The reduction has 9 edges per clause (paper's construction).
		if got := red.In.G.NumPairs(); got != 9*numClauses {
			t.Errorf("pairs = %d, want %d", got, 9*numClauses)
		}
		r := stats.NewRand(seed * 31)
		truth := make([]bool, numVars)
		for i := range truth {
			truth[i] = r.IntN(2) == 1
		}
		conf := red.ConfigFromAssignment(truth)
		if err := conf.Validate(red.In); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sat := red.NumSatisfied(truth)
		want := float64(2*sat + 6*numClauses)
		if got := Evaluate(red.In, conf).Weighted(); math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %d: objective %v, want %v (sat=%d, clauses=%d)",
				seed, got, want, sat, numClauses)
		}
	}
}

func TestE3SATReductionRejectsBadLiterals(t *testing.T) {
	if _, err := BuildE3SATReduction(2, []Clause{{Literal{Var: 5}, Literal{}, Literal{}}}); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

func TestK3PReductionObjective(t *testing.T) {
	// A triangle plus a pendant edge: packing the triangle (3 edges) is the
	// optimum; the corresponding SVGIC configuration scores exactly 3.
	g := graph.New(5)
	g.AddMutualEdge(0, 1)
	g.AddMutualEdge(1, 2)
	g.AddMutualEdge(0, 2)
	g.AddMutualEdge(3, 4)
	in, edgeItem, triItem := BuildK3PReduction(g)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(triItem) != 1 {
		t.Fatalf("triangles found = %d, want 1", len(triItem))
	}
	// Configuration: triangle vertices share the triangle item; 3 and 4
	// share their edge item.
	var triC int
	for c := range triItem {
		triC = c
	}
	pairIdx, _ := in.G.PairIndex(3, 4)
	conf := NewConfiguration(5, 1)
	conf.Assign[0][0] = triC
	conf.Assign[1][0] = triC
	conf.Assign[2][0] = triC
	conf.Assign[3][0] = edgeItem[pairIdx]
	conf.Assign[4][0] = edgeItem[pairIdx]
	if err := conf.Validate(in); err != nil {
		t.Fatal(err)
	}
	// λ=1: each packed edge contributes τ(u,v)+τ(v,u) = 1.
	if got := Evaluate(in, conf).Weighted(); math.Abs(got-4) > 1e-9 {
		t.Errorf("packing objective = %v, want 4 (3 triangle edges + 1 edge)", got)
	}
}

func TestK3PReductionOptimalByBruteForce(t *testing.T) {
	// On the 4-cycle, the best K3 packing is two disjoint edges (value 2);
	// AVG-D should reach it, and no configuration can beat it.
	g := graph.New(4)
	g.AddMutualEdge(0, 1)
	g.AddMutualEdge(1, 2)
	g.AddMutualEdge(2, 3)
	g.AddMutualEdge(3, 0)
	in, _, triItem := BuildK3PReduction(g)
	if len(triItem) != 0 {
		t.Fatalf("4-cycle has no triangles, got %d", len(triItem))
	}
	conf, _, err := SolveAVGD(in, AVGDOptions{R: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := Evaluate(in, conf).Weighted()
	if got > 2+1e-9 {
		t.Errorf("objective %v exceeds the max matching value 2", got)
	}
	if got < 1 {
		t.Errorf("AVG-D found only %v on the 4-cycle (≥1 expected)", got)
	}
}
