package core

import "fmt"

// Unassigned marks an empty display unit in a partial configuration.
const Unassigned = -1

// Configuration is an SAVG k-Configuration (Definition 1): Assign[u][s] is
// the item displayed to user u at slot s, or Unassigned while under
// construction. A complete valid configuration shows every user exactly one
// item per slot with no item repeated across a user's slots.
type Configuration struct {
	Assign [][]int
	K      int
}

// NewConfiguration returns an all-Unassigned configuration for n users and
// k slots.
func NewConfiguration(n, k int) *Configuration {
	a := make([][]int, n)
	for u := range a {
		row := make([]int, k)
		for s := range row {
			row[s] = Unassigned
		}
		a[u] = row
	}
	return &Configuration{Assign: a, K: k}
}

// Clone returns a deep copy.
func (c *Configuration) Clone() *Configuration {
	out := &Configuration{Assign: make([][]int, len(c.Assign)), K: c.K}
	for u := range c.Assign {
		row := make([]int, len(c.Assign[u]))
		copy(row, c.Assign[u])
		out.Assign[u] = row
	}
	return out
}

// NumUsers returns the number of users covered.
func (c *Configuration) NumUsers() int { return len(c.Assign) }

// Item returns the item displayed to u at slot s.
func (c *Configuration) Item(u, s int) int { return c.Assign[u][s] }

// Items returns the k items displayed to u (the paper's A(u,:)).
func (c *Configuration) Items(u int) []int { return c.Assign[u] }

// Complete reports whether every display unit is assigned.
func (c *Configuration) Complete() bool {
	for _, row := range c.Assign {
		for _, it := range row {
			if it == Unassigned {
				return false
			}
		}
	}
	return true
}

// Validate checks that the configuration is complete, in range for the
// instance, and respects the no-duplication constraint.
func (c *Configuration) Validate(in *Instance) error {
	if len(c.Assign) != in.NumUsers() {
		return fmt.Errorf("core: configuration covers %d users, instance has %d", len(c.Assign), in.NumUsers())
	}
	if c.K != in.K {
		return fmt.Errorf("core: configuration has k=%d, instance k=%d", c.K, in.K)
	}
	for u, row := range c.Assign {
		if len(row) != in.K {
			return fmt.Errorf("core: user %d has %d slots, want %d", u, len(row), in.K)
		}
		seen := make(map[int]int, in.K)
		for s, it := range row {
			if it == Unassigned {
				return fmt.Errorf("core: user %d slot %d unassigned", u, s)
			}
			if it < 0 || it >= in.NumItems {
				return fmt.Errorf("core: user %d slot %d has item %d out of range [0,%d)", u, s, it, in.NumItems)
			}
			if prev, dup := seen[it]; dup {
				return fmt.Errorf("core: user %d sees item %d at both slots %d and %d (no-duplication violated)", u, it, prev, s)
			}
			seen[it] = s
		}
	}
	return nil
}

// SubgroupsAt returns the implicit partition of users at slot s keyed by the
// displayed item (Definition 1's V^s). Unassigned units are skipped.
func (c *Configuration) SubgroupsAt(s int) map[int][]int {
	groups := make(map[int][]int)
	for u, row := range c.Assign {
		if it := row[s]; it != Unassigned {
			groups[it] = append(groups[it], u)
		}
	}
	return groups
}

// CoDisplayed reports whether users u and v are directly co-displayed item c
// at some slot (the paper's u ↔c v).
func (c *Configuration) CoDisplayed(u, v, item int) bool {
	for s := 0; s < c.K; s++ {
		if c.Assign[u][s] == item && c.Assign[v][s] == item {
			return true
		}
	}
	return false
}

// IndirectlyCoDisplayed reports whether u and v both see item c but at
// different slots (Definition 4, u ↔c_ind v). Mutually exclusive with direct
// co-display under the no-duplication constraint.
func (c *Configuration) IndirectlyCoDisplayed(u, v, item int) bool {
	su, sv := -1, -1
	for s := 0; s < c.K; s++ {
		if c.Assign[u][s] == item {
			su = s
		}
		if c.Assign[v][s] == item {
			sv = s
		}
	}
	return su >= 0 && sv >= 0 && su != sv
}

// MaxSubgroupSize returns the largest subgroup size over all slots, i.e. the
// quantity bounded by M in SVGIC-ST.
func (c *Configuration) MaxSubgroupSize() int {
	best := 0
	for s := 0; s < c.K; s++ {
		for _, g := range c.SubgroupsAt(s) {
			if len(g) > best {
				best = len(g)
			}
		}
	}
	return best
}

// SizeViolations returns the total number of users in excess of the cap M,
// summed over every oversized subgroup of every slot — the violation count
// reported in the paper's Figure 13.
func (c *Configuration) SizeViolations(m int) int {
	if m <= 0 {
		return 0
	}
	var total int
	for s := 0; s < c.K; s++ {
		for _, g := range c.SubgroupsAt(s) {
			if len(g) > m {
				total += len(g) - m
			}
		}
	}
	return total
}
