package core

import (
	"fmt"

	"github.com/svgic/svgic/internal/graph"
)

// Constructions from the paper's theory sections, used as test fixtures and
// benchmark workloads: the Theorem 1 gap instances separating SVGIC from the
// personalized and group special cases, the MAX-E3SAT gap reduction of
// Lemma 2, and the Max-K3P reduction establishing APX-hardness.

// TheoremOneGroupGap builds the instance I_G of Theorem 1: n users with
// disjoint preferred k-item sets and no social edges, so the group approach
// (one shared configuration) achieves only a 1/n fraction of the optimum.
// It returns the instance, its optimum and the group-approach optimum.
func TheoremOneGroupGap(n, k int, lambda float64) (*Instance, float64, float64) {
	m := n * k
	in := NewInstance(graph.Empty(n), m, k, lambda)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			in.SetPref(i, j*n+i, 1)
		}
	}
	opt := float64(n*k) * (1 - lambda)
	groupOpt := float64(k) * (1 - lambda)
	return in, opt, groupOpt
}

// TheoremOnePersonalGap builds the instance I_P of Theorem 1: a complete
// graph where everyone likes everything almost equally (1 vs 1−eps) and all
// social utilities are 1. The personalized approach forfeits all social
// utility; co-displaying any k common items is Ω(n) times better as λ→
// constant. It returns the instance, a lower bound on the optimum (the
// all-common-items configuration) and the personalized-approach value.
func TheoremOnePersonalGap(n, k int, lambda, eps float64) (*Instance, float64, float64) {
	m := n * k
	g := graph.Complete(n)
	in := NewInstance(g, m, k, lambda)
	for i := 0; i < n; i++ {
		for c := 0; c < m; c++ {
			p := 1 - eps
			// User i's private set C_i = {j*n+i}.
			if c%n == i {
				p = 1
			}
			in.SetPref(i, c, p)
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			for c := 0; c < m; c++ {
				if err := in.SetTau(u, v, c, 1); err != nil {
					panic(err)
				}
			}
		}
	}
	// Co-display user 0's k private items to everyone.
	common := (1-lambda)*float64(k)*((1-eps)*float64(n)+eps) +
		lambda*float64(k)*float64(n*(n-1))
	personal := (1 - lambda) * float64(n*k)
	return in, common, personal
}

// Literal is a MAX-E3SAT literal: variable index and polarity.
type Literal struct {
	Var     int
	Negated bool
}

// Clause is a 3-literal disjunction.
type Clause [3]Literal

// E3SATReduction is the Lemma 2 gap instance together with the bookkeeping
// needed to translate truth assignments into configurations.
type E3SATReduction struct {
	In      *Instance
	NumVars int
	Clauses []Clause

	// Vertex ids.
	ClauseVertex []int    // u_j, one per clause (V1)
	LitVertex    [][3]int // v_{j,t} (V2)
	LitNegVertex [][3]int // v'_{j,t} (V2)
	VarVertex    []int    // w_i (V3)

	// Item ids.
	LitItem    [][3]int // c_{j,t}
	LitNegItem [][3]int // c'_{j,t}
	VarItem    []int    // c_i
	VarNegItem []int    // c'_i
}

// BuildE3SATReduction constructs the SVGIC instance of Lemma 2 for the given
// formula (k=1, λ=1, all preferences zero, unit social utilities along the
// reduction edges).
func BuildE3SATReduction(numVars int, clauses []Clause) (*E3SATReduction, error) {
	for _, cl := range clauses {
		for _, l := range cl {
			if l.Var < 0 || l.Var >= numVars {
				return nil, fmt.Errorf("core: literal variable %d out of range [0,%d)", l.Var, numVars)
			}
		}
	}
	mc := len(clauses)
	n := mc + 6*mc + numVars
	g := graph.New(n)
	red := &E3SATReduction{
		NumVars:      numVars,
		Clauses:      clauses,
		ClauseVertex: make([]int, mc),
		LitVertex:    make([][3]int, mc),
		LitNegVertex: make([][3]int, mc),
		VarVertex:    make([]int, numVars),
		LitItem:      make([][3]int, mc),
		LitNegItem:   make([][3]int, mc),
		VarItem:      make([]int, numVars),
		VarNegItem:   make([]int, numVars),
	}
	v := 0
	for j := 0; j < mc; j++ {
		red.ClauseVertex[j] = v
		v++
	}
	for j := 0; j < mc; j++ {
		for t := 0; t < 3; t++ {
			red.LitVertex[j][t] = v
			v++
			red.LitNegVertex[j][t] = v
			v++
		}
	}
	for i := 0; i < numVars; i++ {
		red.VarVertex[i] = v
		v++
	}
	item := 0
	for j := 0; j < mc; j++ {
		for t := 0; t < 3; t++ {
			red.LitItem[j][t] = item
			item++
			red.LitNegItem[j][t] = item
			item++
		}
	}
	for i := 0; i < numVars; i++ {
		red.VarItem[i] = item
		item++
		red.VarNegItem[i] = item
		item++
	}
	in := NewInstance(g, item, 1, 1)
	red.In = in

	link := func(a, b, c int) {
		g.AddMutualEdge(a, b)
		must(in.SetTau(a, b, c, 1))
		must(in.SetTau(b, a, c, 1))
	}
	for j, cl := range clauses {
		for t, lit := range cl {
			// Edge from the clause vertex to the vertex matching the literal's
			// TRUE assignment, with the corresponding clause-literal item.
			if !lit.Negated {
				link(red.ClauseVertex[j], red.LitVertex[j][t], red.LitItem[j][t])
			} else {
				link(red.ClauseVertex[j], red.LitNegVertex[j][t], red.LitNegItem[j][t])
			}
			// Variable-gadget edges: w_i to both v_{j,t} and v'_{j,t}.
			wi := red.VarVertex[lit.Var]
			link(wi, red.LitVertex[j][t], red.VarItem[lit.Var])
			link(wi, red.LitNegVertex[j][t], red.VarNegItem[lit.Var])
		}
	}
	return red, nil
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// ConfigFromAssignment builds the feasible configuration of Lemma 2's
// sufficient direction for a truth assignment; its objective is
// 2·(satisfied clauses) + 6·(clauses) under the k=1, λ=1 instance.
func (red *E3SATReduction) ConfigFromAssignment(truth []bool) *Configuration {
	in := red.In
	conf := NewConfiguration(in.NumUsers(), 1)
	satisfied := func(l Literal) bool { return truth[l.Var] != l.Negated }
	// Variable vertices: w_i shows c'_i when a_i is TRUE, c_i otherwise.
	for i := range red.VarVertex {
		if truth[i] {
			conf.Assign[red.VarVertex[i]][0] = red.VarNegItem[i]
		} else {
			conf.Assign[red.VarVertex[i]][0] = red.VarItem[i]
		}
	}
	for j, cl := range red.Clauses {
		// Clause vertex: the first satisfied literal's item; arbitrary item
		// (its own first literal item) when unsatisfied.
		cu := -1
		for t, lit := range cl {
			if satisfied(lit) {
				if !lit.Negated {
					cu = red.LitItem[j][t]
				} else {
					cu = red.LitNegItem[j][t]
				}
				break
			}
		}
		if cu < 0 {
			cu = red.LitItem[j][0]
		}
		conf.Assign[red.ClauseVertex[j]][0] = cu
		for t, lit := range cl {
			// Literal vertices: a TRUE literal pairs with the clause vertex,
			// a FALSE literal pairs with its variable vertex.
			if satisfied(lit) {
				if !lit.Negated {
					conf.Assign[red.LitVertex[j][t]][0] = red.LitItem[j][t]
					conf.Assign[red.LitNegVertex[j][t]][0] = red.VarNegItem[lit.Var]
				} else {
					conf.Assign[red.LitNegVertex[j][t]][0] = red.LitNegItem[j][t]
					conf.Assign[red.LitVertex[j][t]][0] = red.VarItem[lit.Var]
				}
			} else {
				if truth[lit.Var] {
					// a_i TRUE: w_i shows c'_i, so v' pairs with it.
					conf.Assign[red.LitNegVertex[j][t]][0] = red.VarNegItem[lit.Var]
					conf.Assign[red.LitVertex[j][t]][0] = red.LitItem[j][t]
				} else {
					conf.Assign[red.LitVertex[j][t]][0] = red.VarItem[lit.Var]
					conf.Assign[red.LitNegVertex[j][t]][0] = red.LitNegItem[j][t]
				}
			}
		}
	}
	return conf
}

// NumSatisfied counts satisfied clauses under the truth assignment.
func (red *E3SATReduction) NumSatisfied(truth []bool) int {
	count := 0
	for _, cl := range red.Clauses {
		for _, lit := range cl {
			if truth[lit.Var] != lit.Negated {
				count++
				break
			}
		}
	}
	return count
}

// BuildK3PReduction constructs the APX-hardness instance from a Max-K3P
// input graph: one item per edge with τ=0.5 on its endpoints, one item per
// triangle with τ=0.5 on all three sides, k=1, λ=1, zero preferences. It
// returns the instance, the per-edge items keyed by pair index, and the
// triangle items with their vertex triples.
func BuildK3PReduction(gHat *graph.Graph) (*Instance, map[int]int, map[int][3]int) {
	pairs := gHat.Pairs()
	var triangles [][3]int
	for _, p := range pairs {
		u, v := p[0], p[1]
		for _, w := range gHat.Neighbors(u) {
			if w > v && gHat.Connected(v, w) {
				triangles = append(triangles, [3]int{u, v, w})
			}
		}
	}
	m := len(pairs) + len(triangles)
	in := NewInstance(gHat, m, 1, 1)
	edgeItem := make(map[int]int, len(pairs))
	triItem := make(map[int][3]int, len(triangles))
	setPair := func(u, v, c int) {
		if gHat.HasEdge(u, v) {
			must(in.SetTau(u, v, c, 0.5))
		}
		if gHat.HasEdge(v, u) {
			must(in.SetTau(v, u, c, 0.5))
		}
	}
	for e, p := range pairs {
		edgeItem[e] = e
		setPair(p[0], p[1], e)
	}
	for t, tri := range triangles {
		c := len(pairs) + t
		triItem[c] = tri
		setPair(tri[0], tri[1], c)
		setPair(tri[0], tri[2], c)
		setPair(tri[1], tri[2], c)
	}
	return in, edgeItem, triItem
}
