package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/svgic/svgic/internal/lp"
)

// AVGDOptions configures the deterministic AVG-D solver.
type AVGDOptions struct {
	LPMode LPMode
	LP     lp.RelaxOptions
	// R is the balancing ratio between the immediate utility of the candidate
	// subgroup and the expected future LP utility (paper §4.3). R = 1/4 gives
	// the worst-case 4-approximation; §6.7 studies other values.
	R       float64
	SizeCap int // SVGIC-ST subgroup size bound M; 0 disables the cap
	// FullRescan disables the advanced candidate filtering: every (item,
	// slot) entry is re-evaluated on every iteration instead of only the
	// invalidated row and column. This is the derandomized counterpart of
	// running AVG without the advanced sampling scheme, kept for the
	// Figure 9(b) ablation ("AVG-D–AS").
	FullRescan bool
	// Trace, when non-nil, receives one entry per CSF iteration describing
	// the chosen focal item, slot, target subgroup and score — the raw
	// material of the paper's Figure 11 case study.
	Trace *[]TraceStep
	// SlotWeights, when non-nil (length k), makes the candidate selection
	// slot-significance aware (Extension B): both the immediate gain and the
	// forfeited future LP mass of a candidate at slot s scale with γ_s, so
	// the entry score becomes γ_s·g and valuable subgroups are steered onto
	// significant slots during construction rather than by post-hoc
	// reordering. Score the result with EvaluateWithSlotWeights.
	SlotWeights []float64
	// Parallel evaluates candidate entries on all CPUs (the parallelization
	// the paper notes reduces AVG-D's complexity by a factor of up to nmk).
	// The result is bit-identical to the serial run: entries are pure
	// functions of the shared state and each worker has its own scratch.
	Parallel bool
	// Warm, when non-nil, is an incumbent configuration to warm-start from:
	// the LP ascent seeds at its indicator point and the result never scores
	// below it (see WarmStarter). Incumbents that fail validation against the
	// instance (or the size cap) are ignored.
	Warm *Configuration
}

// TraceStep records one AVG-D iteration: item c was co-displayed at slot s
// to Users, with candidate score Gain = ALG(Star) − r·ΔLP(Star).
type TraceStep struct {
	Item  int
	Slot  int
	Users []int
	Gain  float64
}

// DefaultR is the balancing ratio with the proven guarantee.
const DefaultR = 0.25

// SolveAVGD runs the full deterministic pipeline: LP relaxation, then
// derandomized CSF selection (Algorithm 3 with the dirty row/column caching
// described in DESIGN.md).
//
// Uncapped instances whose social network is disconnected are first split
// with ComponentDecompose and solved per component: the SAVG objective
// couples users only across social pairs, so the merge loses nothing — and
// the threshold-prefix candidates of CSF, which on a whole instance must be
// prefixes of a single factor order mixing all components, can cut at a
// different threshold in every component. Per-component solving therefore
// never hurts the objective and is also what the batch engine parallelizes;
// doing it here keeps the serial and concurrent paths bit-identical.
// Capped (SVGIC-ST) instances are solved whole — see the SizeCap note below.
func SolveAVGD(in *Instance, opts AVGDOptions) (*Configuration, RoundingStats, error) {
	conf, st, _, err := solveAVGD(context.Background(), in, opts)
	return conf, st, err
}

// solveAVGD is the context-aware pipeline behind SolveAVGD and AVGDSolver:
// the context is checked before the LP relaxation, between the LP and
// rounding phases, and between component sub-solves. The returned count is
// the number of independently solved components (1 = solved whole), so the
// Solution envelope can report the internal decomposition honestly.
func solveAVGD(ctx context.Context, in *Instance, opts AVGDOptions) (*Configuration, RoundingStats, int, error) {
	if err := in.Validate(); err != nil {
		return nil, RoundingStats{}, 0, err
	}
	if err := validateCap(in, opts.SizeCap); err != nil {
		return nil, RoundingStats{}, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, RoundingStats{}, 0, err
	}
	if in.Lambda == 0 && opts.SizeCap == 0 {
		return PersonalizedConfig(in), RoundingStats{}, 1, nil
	}
	// The SVGIC-ST subgroup size cap binds across components: users from
	// different components shown the same item at the same slot share one
	// subgroup, so capped instances must be solved whole.
	warm := validWarm(in, opts.Warm, opts.SizeCap)
	if opts.SizeCap == 0 {
		if subs, origs := ComponentDecompose(in); len(subs) > 1 {
			opts.Warm = warm // screened once; sub-solves slice it per component
			conf, st, err := solveAVGDComponents(ctx, in, subs, origs, opts)
			return conf, st, len(subs), err
		}
	}
	lpOpts := opts.LP
	if warm != nil {
		lpOpts.Warm = warmIndicator(in, warm)
	}
	f, err := SolveRelaxation(in, opts.LPMode, lpOpts)
	if err != nil {
		return nil, RoundingStats{}, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, RoundingStats{}, 0, err
	}
	conf, st := RoundAVGD(in, f, opts)
	if warm != nil {
		conf = betterOf(in, conf, warm)
	}
	return conf, st, 1, nil
}

// solveAVGDComponents solves every component sub-instance with the direct
// pipeline and merges configurations, stats (summed) and traces (per-user ids
// mapped back to the whole instance, components in canonical order).
func solveAVGDComponents(ctx context.Context, in *Instance, subs []*Instance, origs [][]int, opts AVGDOptions) (*Configuration, RoundingStats, error) {
	var total RoundingStats
	parts := make([]*Configuration, len(subs))
	for i, sub := range subs {
		if err := ctx.Err(); err != nil {
			return nil, RoundingStats{}, err
		}
		subOpts := opts
		var trace []TraceStep
		if opts.Trace != nil {
			subOpts.Trace = &trace
		}
		subLP := subOpts.LP
		var subWarm *Configuration
		if opts.Warm != nil {
			subWarm = warmRows(opts.Warm, origs[i], in.K)
			subLP.Warm = warmIndicator(sub, subWarm)
		}
		f, err := SolveRelaxation(sub, subOpts.LPMode, subLP)
		if err != nil {
			return nil, RoundingStats{}, err
		}
		conf, st := RoundAVGD(sub, f, subOpts)
		if subWarm != nil {
			conf = betterOf(sub, conf, subWarm)
		}
		parts[i] = conf
		total.Iterations += st.Iterations
		total.Rejections += st.Rejections
		total.Idle += st.Idle
		total.FallbackUnits += st.FallbackUnits
		total.LPObjective += st.LPObjective
		if opts.Trace != nil {
			for _, step := range trace {
				users := make([]int, len(step.Users))
				for j, u := range step.Users {
					users[j] = origs[i][u]
				}
				step.Users = users
				*opts.Trace = append(*opts.Trace, step)
			}
		}
	}
	return MergeConfigurations(in.NumUsers(), in.K, parts, origs), total, nil
}

// avgdEntry caches the best candidate Star for one (item, slot):
// bestG is ALG(Star) − r·ΔLP(Star) (the paper's f up to the additive
// constant r·OPT_LP(S_cur), which is identical across candidates of one
// iteration), and bestLen the number of eligible users in the chosen prefix.
type avgdEntry struct {
	bestG   float64
	bestLen int
	ok      bool
}

// avgdScratch is the per-worker epoch-stamped membership buffer used while
// walking one candidate's prefix.
type avgdScratch struct {
	inStar []int
	epoch  int
}

// avgdState extends the rounding state with the AVG-D bookkeeping.
type avgdState struct {
	*roundState
	r         float64
	plpUnit   []float64   // per user: Σ_c aP[u][c]·x̄[u][c]/k (LP mass of one display unit)
	spPair    []float64   // per pair: Σ_c aS[e][c]·min(x̄u,x̄v)/k (LP mass of one pair-slot)
	sortedAll [][]int     // per item: all users sorted by descending factor
	entries   []avgdEntry // per c*K+s
	scratch   avgdScratch // serial-path scratch
	parallel  bool
}

// RoundAVGD deterministically rounds the fractional solution f
// (Algorithm 3). Each iteration evaluates, for every (item, slot), every
// threshold-prefix of eligible users ordered by utility factor, picks the
// candidate maximizing ALG + r·OPT_LP(S_fut), co-displays the focal item to
// it, and refreshes only the invalidated row and column of the candidate
// cache.
func RoundAVGD(in *Instance, f *Factors, opts AVGDOptions) (*Configuration, RoundingStats) {
	r := opts.R
	if r == 0 {
		r = DefaultR
	}
	st := RoundingStats{LPObjective: f.Objective}
	n, m, k := in.NumUsers(), in.NumItems, in.K

	as := &avgdState{
		roundState: newRoundState(in, f, opts.SizeCap),
		r:          r,
		plpUnit:    make([]float64, n),
		spPair:     make([]float64, len(in.G.Pairs())),
		sortedAll:  make([][]int, m),
		entries:    make([]avgdEntry, m*k),
		scratch:    avgdScratch{inStar: make([]int, n)},
		parallel:   opts.Parallel,
	}
	kf := float64(k)
	for u := 0; u < n; u++ {
		var s float64
		for c := 0; c < m; c++ {
			s += as.aP[u][c] * f.X[u][c]
		}
		as.plpUnit[u] = s / kf
	}
	for e, p := range in.G.Pairs() {
		var s float64
		xu, xv := f.X[p[0]], f.X[p[1]]
		for c := 0; c < m; c++ {
			s += as.aS[e][c] * math.Min(xu[c], xv[c])
		}
		as.spPair[e] = s / kf
	}
	for c := 0; c < m; c++ {
		as.sortedAll[c] = sortAllByFactor(f.X, c, n)
	}
	all := make([]int, m*k)
	for i := range all {
		all[i] = i
	}
	as.recompute(all)

	gamma := opts.SlotWeights
	if gamma != nil && len(gamma) != k {
		gamma = nil // defensive: ignore malformed weights
	}
	for as.remaining > 0 {
		bestIdx, bestG := -1, math.Inf(-1)
		for i := range as.entries {
			e := &as.entries[i]
			if !e.ok {
				continue
			}
			score := e.bestG
			if gamma != nil {
				score *= gamma[i%k]
			}
			if score > bestG {
				bestG, bestIdx = score, i
			}
		}
		if bestIdx < 0 {
			break // no candidate left (only possible under the ST cap)
		}
		st.Iterations++
		c, s := bestIdx/k, bestIdx%k
		assigned := as.apply(c, s, as.entries[bestIdx].bestLen)
		if opts.Trace != nil {
			*opts.Trace = append(*opts.Trace, TraceStep{
				Item: c, Slot: s, Users: assigned, Gain: bestG,
			})
		}
		// Eligibility changed only for item c (the assigned users now hold
		// it) and slot s (their units are filled): refresh row c and column s
		// (or everything under the FullRescan ablation).
		if opts.FullRescan {
			as.recompute(all)
			continue
		}
		dirty := make([]int, 0, m+k)
		for ss := 0; ss < k; ss++ {
			dirty = append(dirty, c*k+ss)
		}
		for cc := 0; cc < m; cc++ {
			if cc != c {
				dirty = append(dirty, cc*k+s)
			}
		}
		as.recompute(dirty)
	}
	if as.remaining > 0 {
		st.FallbackUnits = completeGreedy(in, as.conf, as.aP, as.aS, as.cap, as.counts)
	}
	return as.conf, st
}

// sortAllByFactor orders every user by descending x̄[·][c], ties by id.
func sortAllByFactor(X [][]float64, c, n int) []int {
	us := make([]int, n)
	for i := range us {
		us[i] = i
	}
	// Insertion sort on small n keeps this allocation-light; n is the user
	// count of one shopping group.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := us[j-1], us[j]
			if X[a][c] > X[b][c] || (X[a][c] == X[b][c] && a < b) {
				break
			}
			us[j-1], us[j] = b, a
		}
	}
	return us
}

// recompute refreshes the given entry indices, fanning out over all CPUs
// when the parallel option is set and the batch is large enough to pay for
// the goroutines. Entries are pure functions of the shared (read-only during
// recompute) state, so the parallel result is identical to the serial one.
func (as *avgdState) recompute(idxs []int) {
	k := as.in.K
	workers := 1
	if as.parallel && len(idxs) >= 64 {
		workers = runtime.GOMAXPROCS(0)
		if workers > len(idxs)/16 {
			workers = len(idxs) / 16
		}
	}
	if workers <= 1 {
		for _, i := range idxs {
			as.entries[i] = as.computeEntry(i/k, i%k, &as.scratch)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := avgdScratch{inStar: make([]int, as.in.NumUsers())}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(idxs) {
					return
				}
				idx := idxs[i]
				as.entries[idx] = as.computeEntry(idx/k, idx%k, &sc)
			}
		}()
	}
	wg.Wait()
}

// computeEntry evaluates every threshold candidate for (c, s): walking the
// eligible users in descending factor order, a cut is allowed wherever the
// factor strictly drops (a threshold α between the two values realizes
// exactly that prefix) and after the final user (α = 0, or α at the smallest
// factor). Under the ST cap the prefix additionally stops at the remaining
// capacity, matching the capped CSF.
func (as *avgdState) computeEntry(c, s int, sc *avgdScratch) avgdEntry {
	if as.capReached(c, s) {
		return avgdEntry{}
	}
	in := as.in
	k := in.K
	capLeft := -1
	if as.cap > 0 {
		capLeft = as.cap - as.counts[c*k+s]
	}
	sc.epoch++
	ep := sc.epoch
	var alg, lpLoss float64
	var entry avgdEntry
	count := 0
	prevFactor := math.Inf(1)
	flush := func() {
		if count == 0 {
			return
		}
		if g := alg - as.r*lpLoss; !entry.ok || g > entry.bestG {
			entry = avgdEntry{bestG: g, bestLen: count, ok: true}
		}
	}
	for _, u := range as.sortedAll[c] {
		if !as.eligible(u, c, s) {
			continue
		}
		fu := as.f.Factor(u, c)
		if fu < prevFactor {
			flush() // a threshold between prevFactor and fu realizes this prefix
			prevFactor = fu
		}
		// Add u to the running Star.
		alg += as.aP[u][c]
		lpLoss += as.plpUnit[u]
		for _, e := range in.G.IncidentPairs(u) {
			a, b := in.G.PairAt(e)
			v := a
			if v == u {
				v = b
			}
			if sc.inStar[v] == ep {
				alg += as.aS[e][c]
			} else if as.conf.Assign[v][s] == Unassigned {
				lpLoss += as.spPair[e]
			}
		}
		sc.inStar[u] = ep
		count++
		if capLeft > 0 && count >= capLeft {
			break
		}
	}
	flush()
	return entry
}

// apply co-displays item c at slot s to the first prefixLen eligible users in
// factor order — the same walk computeEntry used, so the assigned Star is
// exactly the cached candidate. It returns the assigned users.
func (as *avgdState) apply(c, s, prefixLen int) []int {
	assigned := make([]int, 0, prefixLen)
	for _, u := range as.sortedAll[c] {
		if len(assigned) >= prefixLen {
			break
		}
		if as.eligible(u, c, s) {
			as.assign(u, c, s)
			assigned = append(assigned, u)
		}
	}
	return assigned
}
