package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/svgic/svgic/internal/graph"
)

func TestConfigurationValidate(t *testing.T) {
	in := buildPaperExample(0.5)
	conf := NewConfiguration(4, 3)
	if err := conf.Validate(in); err == nil {
		t.Error("unassigned configuration validated")
	}
	conf = configFromRows([][]int{
		{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2},
	})
	if err := conf.Validate(in); err != nil {
		t.Errorf("valid configuration rejected: %v", err)
	}
	dup := configFromRows([][]int{
		{0, 0, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2},
	})
	if err := dup.Validate(in); err == nil {
		t.Error("duplicate item accepted")
	}
	oob := configFromRows([][]int{
		{0, 1, 9}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2},
	})
	if err := oob.Validate(in); err == nil {
		t.Error("out-of-range item accepted")
	}
	short := NewConfiguration(3, 3)
	if err := short.Validate(in); err == nil {
		t.Error("wrong user count accepted")
	}
}

func TestSubgroupsAtAndCoDisplay(t *testing.T) {
	conf := configFromRows([][]int{
		{0, 1},
		{0, 2},
		{1, 3},
	})
	groups := conf.SubgroupsAt(0)
	if len(groups[0]) != 2 || len(groups[1]) != 1 {
		t.Errorf("groups at slot 0 = %v", groups)
	}
	if !conf.CoDisplayed(0, 1, 0) {
		t.Error("users 0,1 share item 0 at slot 0")
	}
	if conf.CoDisplayed(0, 2, 1) {
		t.Error("user 0 sees item 1 at slot 1, user 2 at slot 0: not direct co-display")
	}
	if !conf.IndirectlyCoDisplayed(0, 2, 1) {
		t.Error("users 0,2 both see item 1 at different slots")
	}
	if conf.IndirectlyCoDisplayed(0, 2, 0) {
		t.Error("user 2 never sees item 0")
	}
	if conf.MaxSubgroupSize() != 2 {
		t.Errorf("max subgroup size = %d", conf.MaxSubgroupSize())
	}
	if conf.SizeViolations(1) != 1 { // one subgroup of size 2 at cap 1
		t.Errorf("violations at cap 1 = %d, want 1", conf.SizeViolations(1))
	}
	if conf.SizeViolations(0) != 0 {
		t.Error("cap 0 must disable violation counting")
	}
}

func TestEvaluateSTIndirect(t *testing.T) {
	// Two friends, two items, two slots; they see the same items at swapped
	// slots: all social utility is indirect.
	g := graph.New(2)
	g.AddMutualEdge(0, 1)
	in := NewInstance(g, 2, 2, 0.5)
	must(in.SetTau(0, 1, 0, 0.4))
	must(in.SetTau(1, 0, 0, 0.2))
	conf := configFromRows([][]int{
		{0, 1},
		{1, 0},
	})
	plain := Evaluate(in, conf)
	if plain.Social != 0 {
		t.Errorf("direct social = %v, want 0", plain.Social)
	}
	st := EvaluateST(in, conf, 0.5)
	if math.Abs(st.SocialIndirect-0.6) > 1e-12 {
		t.Errorf("indirect social = %v, want 0.6", st.SocialIndirect)
	}
	if math.Abs(st.Weighted()-0.5*0.5*0.6) > 1e-12 {
		t.Errorf("weighted = %v, want λ·d_tel·τ = 0.15", st.Weighted())
	}
	// Aligning the slots turns it into direct co-display worth more.
	aligned := configFromRows([][]int{
		{0, 1},
		{0, 1},
	})
	stA := EvaluateST(in, aligned, 0.5)
	if math.Abs(stA.Social-0.6) > 1e-12 || stA.SocialIndirect != 0 {
		t.Errorf("aligned: direct %v indirect %v", stA.Social, stA.SocialIndirect)
	}
	if stA.Weighted() <= st.Weighted() {
		t.Error("direct co-display should dominate indirect")
	}
}

func TestDirectAndIndirectMutuallyExclusive(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		in := randomInstance(uint64(seed), 5, 6, 3, 0.5)
		conf, _, err := SolveAVG(in, AVGOptions{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		for _, p := range in.G.Pairs() {
			for c := 0; c < in.NumItems; c++ {
				if conf.CoDisplayed(p[0], p[1], c) && conf.IndirectlyCoDisplayed(p[0], p[1], c) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestReportShares(t *testing.T) {
	rep := Report{Preference: 10, Social: 5, Lambda: 0.4}
	if math.Abs(rep.Weighted()-(0.6*10+0.4*5)) > 1e-12 {
		t.Errorf("Weighted = %v", rep.Weighted())
	}
	if math.Abs(rep.PreferencePct()+rep.SocialPct()-1) > 1e-12 {
		t.Errorf("shares sum to %v", rep.PreferencePct()+rep.SocialPct())
	}
	var zero Report
	if zero.PreferencePct() != 0 || zero.SocialPct() != 0 {
		t.Error("zero report shares not zero")
	}
}

func TestRegretRatiosBounds(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		in := randomInstance(uint64(seed), 5, 7, 2, 0.5)
		conf, _, err := SolveAVGD(in, AVGDOptions{})
		if err != nil {
			return false
		}
		for _, r := range RegretRatios(in, conf) {
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestRegretZeroWhenDictated(t *testing.T) {
	// A lone user always achieves their personal upper bound with top-k.
	g := graph.Empty(1)
	in := NewInstance(g, 5, 2, 0.3)
	for c := 0; c < 5; c++ {
		in.SetPref(0, c, float64(c))
	}
	conf := PersonalizedConfig(in)
	if r := RegretRatios(in, conf)[0]; r != 0 {
		t.Errorf("lone user's regret = %v, want 0", r)
	}
}

func TestSubgroupMetricsHandComputed(t *testing.T) {
	// 4 users on a path 0-1-2-3; one slot; {0,1} see item A, {2,3} see B.
	g := graph.New(4)
	g.AddMutualEdge(0, 1)
	g.AddMutualEdge(1, 2)
	g.AddMutualEdge(2, 3)
	in := NewInstance(g, 2, 1, 0.5)
	conf := configFromRows([][]int{{0}, {0}, {1}, {1}})
	m := ComputeSubgroupMetrics(in, conf)
	if math.Abs(m.IntraPct-2.0/3) > 1e-12 {
		t.Errorf("IntraPct = %v, want 2/3", m.IntraPct)
	}
	if math.Abs(m.InterPct-1.0/3) > 1e-12 {
		t.Errorf("InterPct = %v, want 1/3", m.InterPct)
	}
	if math.Abs(m.CoDisplayPct-2.0/3) > 1e-12 {
		t.Errorf("CoDisplayPct = %v, want 2/3", m.CoDisplayPct)
	}
	if m.AlonePct != 0 {
		t.Errorf("AlonePct = %v, want 0", m.AlonePct)
	}
	// Subgroup density: each pair-group has density 1; network density = 1/2.
	if math.Abs(m.NormalizedDensity-2) > 1e-12 {
		t.Errorf("NormalizedDensity = %v, want 2", m.NormalizedDensity)
	}
	if m.MeanSubgroupSize != 2 {
		t.Errorf("MeanSubgroupSize = %v, want 2", m.MeanSubgroupSize)
	}
}

func TestSubgroupEditDistance(t *testing.T) {
	g := graph.New(3)
	g.AddMutualEdge(0, 1)
	g.AddMutualEdge(1, 2)
	in := NewInstance(g, 4, 2, 0.5)
	// Slot 0: {0,1} together; slot 1: {1,2} together. Both pairs flip.
	conf := configFromRows([][]int{
		{0, 1},
		{0, 2},
		{1, 2},
	})
	if d := SubgroupEditDistance(in, conf); d != 2 {
		t.Errorf("edit distance = %d, want 2", d)
	}
	// A stable configuration has distance 0.
	stable := configFromRows([][]int{
		{0, 1},
		{0, 1},
		{2, 3},
	})
	if d := SubgroupEditDistance(in, stable); d != 0 {
		t.Errorf("stable edit distance = %d", d)
	}
}

func TestUserUtilityMatchesEvaluate(t *testing.T) {
	// Summing per-user utilities equals the weighted total (Definition 3
	// splits the same objective by user).
	err := quick.Check(func(seed uint16) bool {
		in := randomInstance(uint64(seed), 6, 7, 2, 0.4)
		conf, _, err := SolveAVGD(in, AVGDOptions{})
		if err != nil {
			return false
		}
		var sum float64
		for u := 0; u < in.NumUsers(); u++ {
			sum += UserUtility(in, conf, u)
		}
		return math.Abs(sum-Evaluate(in, conf).Weighted()) < 1e-9
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestSumTopK(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := sumTopK(xs, 2); got != 9 {
		t.Errorf("sumTopK(2) = %v, want 9", got)
	}
	if got := sumTopK(xs, 99); got != 14 {
		t.Errorf("sumTopK(all) = %v, want 14", got)
	}
	if got := sumTopK(nil, 3); got != 0 {
		t.Errorf("sumTopK(nil) = %v", got)
	}
}

func TestInstanceValidate(t *testing.T) {
	g := graph.Empty(2)
	in := NewInstance(g, 2, 3, 0.5) // k > m
	if err := in.Validate(); err == nil {
		t.Error("k > m accepted")
	}
	in = NewInstance(g, 3, 2, 1.5)
	if err := in.Validate(); err == nil {
		t.Error("λ > 1 accepted")
	}
	in = NewInstance(g, 3, 2, 0.5)
	in.SetPref(0, 0, -1)
	if err := in.Validate(); err == nil {
		t.Error("negative preference accepted")
	}
	in = NewInstance(g, 3, 0, 0.5)
	if err := in.Validate(); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestSetTauRequiresEdge(t *testing.T) {
	g := graph.Empty(2)
	in := NewInstance(g, 2, 1, 0.5)
	if err := in.SetTau(0, 1, 0, 0.5); err == nil {
		t.Error("τ on a non-edge accepted")
	}
	if got := in.Tau(0, 1, 0); got != 0 {
		t.Errorf("Tau on non-edge = %v", got)
	}
}

func TestPairSocialCountsBothDirections(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1) // one direction only
	in := NewInstance(g, 1, 1, 0.5)
	must(in.SetTau(0, 1, 0, 0.3))
	if got := in.PairSocial(0, 1, 0); got != 0.3 {
		t.Errorf("one-directional PairSocial = %v, want 0.3", got)
	}
	g2 := graph.New(2)
	g2.AddMutualEdge(0, 1)
	in2 := NewInstance(g2, 1, 1, 0.5)
	must(in2.SetTau(0, 1, 0, 0.3))
	must(in2.SetTau(1, 0, 0, 0.2))
	if got := in2.PairSocial(1, 0, 0); got != 0.5 {
		t.Errorf("mutual PairSocial = %v, want 0.5", got)
	}
}
