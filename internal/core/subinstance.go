package core

// SubInstance returns the instance induced by the given users (preferences,
// social edges and τ restricted to the subset; items, k and λ unchanged)
// together with the original user ids in new-id order. The prepartitioning
// wrapper for SVGIC-ST builds its per-group subproblems with it.
func SubInstance(in *Instance, users []int) (*Instance, []int, error) {
	sub, orig, err := in.G.InducedSubgraph(users)
	if err != nil {
		return nil, nil, err
	}
	out := NewInstance(sub, in.NumItems, in.K, in.Lambda)
	for nu, ou := range orig {
		copy(out.Pref[nu], in.Pref[ou])
	}
	for nu, ou := range orig {
		for _, nv := range sub.Out(nu) {
			ov := orig[nv]
			for c := 0; c < in.NumItems; c++ {
				if t := in.Tau(ou, ov, c); t != 0 {
					must(out.SetTau(nu, nv, c, t))
				}
			}
		}
	}
	return out, orig, nil
}

// MergeConfigurations embeds per-subset configurations back into a full
// configuration over n users: for every (subConf, origIDs) pair, user
// origIDs[i]'s row is taken from subConf row i.
func MergeConfigurations(n, k int, parts []*Configuration, origs [][]int) *Configuration {
	out := NewConfiguration(n, k)
	for pi, part := range parts {
		for i, row := range part.Assign {
			copy(out.Assign[origs[pi][i]], row)
		}
	}
	return out
}

// OverlayConfiguration embeds per-subset configurations onto a clone of an
// existing full configuration: rows outside every subset keep their base
// assignment. The dirty-component delta repair uses it to merge re-solved
// components back into a live session's configuration without disturbing
// untouched components (or departed users' frozen rows, which
// MergeConfigurations would reset to Unassigned).
func OverlayConfiguration(base *Configuration, parts []*Configuration, origs [][]int) *Configuration {
	out := base.Clone()
	for pi, part := range parts {
		for i, row := range part.Assign {
			copy(out.Assign[origs[pi][i]], row)
		}
	}
	return out
}
