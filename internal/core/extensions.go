package core

import (
	"sort"
)

// Extensions of Section 5 of the paper: commodity values (A), layout slot
// significance (B), multi-view display (C), generalized group-wise social
// benefits (D) and subgroup-change smoothing (E). The dynamic scenario (F)
// lives in dynamic.go.

// WeightedInstance returns a copy of the instance with every utility of item
// c scaled by weight[c] (Extension A: commodity values ω_c). Any SVGIC solver
// run on the weighted instance maximizes the profit-weighted objective.
func WeightedInstance(in *Instance, weight []float64) *Instance {
	out := NewInstance(in.G, in.NumItems, in.K, in.Lambda)
	for u := 0; u < in.NumUsers(); u++ {
		for c := 0; c < in.NumItems; c++ {
			out.Pref[u][c] = in.Pref[u][c] * weight[c]
		}
	}
	for u := 0; u < in.NumUsers(); u++ {
		for _, v := range in.G.Out(u) {
			for c := 0; c < in.NumItems; c++ {
				if t := in.Tau(u, v, c); t != 0 {
					must(out.SetTau(u, v, c, t*weight[c]))
				}
			}
		}
	}
	return out
}

// EvaluateWithSlotWeights scores a configuration with per-slot significance
// weights γ_s (Extension B): slot s's preference and direct-co-display
// contributions are scaled by gamma[s].
func EvaluateWithSlotWeights(in *Instance, conf *Configuration, gamma []float64) float64 {
	var total float64
	for s := 0; s < conf.K; s++ {
		var pref, soc float64
		for u := 0; u < in.NumUsers(); u++ {
			it := conf.Assign[u][s]
			if it == Unassigned {
				continue
			}
			pref += in.Pref[u][it]
			for _, v := range in.G.Out(u) {
				if conf.Assign[v][s] == it {
					soc += in.Tau(u, v, it)
				}
			}
		}
		total += gamma[s] * ((1-in.Lambda)*pref + in.Lambda*soc)
	}
	return total
}

// OptimizeSlotOrder permutes the slots of a configuration globally so that
// the most valuable per-slot contributions land on the most significant
// slots. A global slot permutation preserves validity and every co-display
// relation, so under plain SVGIC it is value-neutral while maximizing the
// γ-weighted objective exactly (sort both by value).
func OptimizeSlotOrder(in *Instance, conf *Configuration, gamma []float64) *Configuration {
	k := conf.K
	value := make([]float64, k)
	for s := 0; s < k; s++ {
		g := make([]float64, k)
		g[s] = 1
		value[s] = EvaluateWithSlotWeights(in, conf, g)
	}
	bySlotValue := make([]int, k)
	byGamma := make([]int, k)
	for i := range bySlotValue {
		bySlotValue[i] = i
		byGamma[i] = i
	}
	sort.Slice(bySlotValue, func(a, b int) bool { return value[bySlotValue[a]] > value[bySlotValue[b]] })
	sort.Slice(byGamma, func(a, b int) bool { return gamma[byGamma[a]] > gamma[byGamma[b]] })
	out := NewConfiguration(conf.NumUsers(), k)
	for rank := 0; rank < k; rank++ {
		src := bySlotValue[rank]
		dst := byGamma[rank]
		for u := range conf.Assign {
			out.Assign[u][dst] = conf.Assign[u][src]
		}
	}
	return out
}

// MultiViewConfig is an MVD-supportive configuration (Extension C): each
// display unit holds up to β items, the primary view first.
type MultiViewConfig struct {
	Views [][][]int // [user][slot][view]
	K     int
	Beta  int
}

// GreedyMVD extends a primary configuration to multi-view display: at every
// slot each user keeps the primary item and greedily adds up to β−1 group
// views, chosen among the items friends see at the same slot by descending
// social gain. No item is repeated across a user's views.
func GreedyMVD(in *Instance, base *Configuration, beta int) *MultiViewConfig {
	n, k := in.NumUsers(), in.K
	mv := &MultiViewConfig{Views: make([][][]int, n), K: k, Beta: beta}
	for u := 0; u < n; u++ {
		mv.Views[u] = make([][]int, k)
		seen := make(map[int]struct{}, k*beta)
		for _, it := range base.Assign[u] {
			seen[it] = struct{}{}
		}
		for s := 0; s < k; s++ {
			views := []int{base.Assign[u][s]}
			// Candidate group views: friends' primary items at this slot.
			type cand struct {
				item int
				gain float64
			}
			gains := make(map[int]float64)
			for _, v := range in.G.Out(u) {
				it := base.Assign[v][s]
				if it == Unassigned || it == base.Assign[u][s] {
					continue
				}
				if _, dup := seen[it]; dup {
					continue
				}
				gains[it] += in.Lambda * in.Tau(u, v, it)
			}
			cands := make([]cand, 0, len(gains))
			for it, g := range gains {
				cands = append(cands, cand{item: it, gain: g})
			}
			sort.Slice(cands, func(a, b int) bool {
				if cands[a].gain != cands[b].gain {
					return cands[a].gain > cands[b].gain
				}
				return cands[a].item < cands[b].item
			})
			for _, cd := range cands {
				if len(views) >= beta {
					break
				}
				views = append(views, cd.item)
				seen[cd.item] = struct{}{}
			}
			mv.Views[u][s] = views
		}
	}
	return mv
}

// EvaluateMVD scores a multi-view configuration: every view contributes its
// preference utility, and two friends sharing any view (primary or group) of
// the same item at the same slot realize the social utility (the free
// primary/group view switching of Extension C).
func EvaluateMVD(in *Instance, mv *MultiViewConfig) Report {
	rep := Report{Lambda: in.Lambda}
	n := in.NumUsers()
	hasView := func(u, s, item int) bool {
		for _, it := range mv.Views[u][s] {
			if it == item {
				return true
			}
		}
		return false
	}
	for u := 0; u < n; u++ {
		for s := 0; s < mv.K; s++ {
			for _, it := range mv.Views[u][s] {
				rep.Preference += in.Pref[u][it]
				for _, v := range in.G.Out(u) {
					if hasView(v, s, it) {
						rep.Social += in.Tau(u, v, it)
					}
				}
			}
		}
	}
	// Shared views are double counted per direction above only when both
	// directions exist, matching Definition 3's per-user sums.
	return rep
}

// GroupSocialFunc is a generalized group-wise social model (Extension D):
// the utility user u obtains from viewing item c together with the maximal
// co-display subgroup `others` (u excluded).
type GroupSocialFunc func(u int, others []int, c int) float64

// EvaluateGroupwise scores a configuration under a group-wise social model:
// for every slot, every user's social term is τ(u, V, c) for the maximal
// subgroup V co-displayed c with u.
func EvaluateGroupwise(in *Instance, conf *Configuration, gs GroupSocialFunc) float64 {
	var pref, soc float64
	for s := 0; s < conf.K; s++ {
		for it, members := range conf.SubgroupsAt(s) {
			for _, u := range members {
				pref += in.Pref[u][it]
				if len(members) > 1 {
					others := make([]int, 0, len(members)-1)
					for _, v := range members {
						if v != u {
							others = append(others, v)
						}
					}
					soc += gs(u, others, it)
				}
			}
		}
	}
	return (1-in.Lambda)*pref + in.Lambda*soc
}

// PairwiseGroupSocial adapts the instance's pairwise τ into a GroupSocialFunc
// (the special case noted in Extension D).
func PairwiseGroupSocial(in *Instance) GroupSocialFunc {
	return func(u int, others []int, c int) float64 {
		var s float64
		for _, v := range others {
			s += in.Tau(u, v, c)
		}
		return s
	}
}

// StabilizeSubgroups reorders the slots of a configuration to minimize the
// total subgroup edit distance between consecutive slots (Extension E).
// A global slot permutation leaves the SVGIC objective unchanged, so the
// smoothing is free; the ordering is a nearest-neighbour chain on partition
// distance. It returns the reordered configuration and its edit distance.
func StabilizeSubgroups(in *Instance, conf *Configuration) (*Configuration, int) {
	k := conf.K
	if k <= 2 {
		return conf.Clone(), SubgroupEditDistance(in, conf)
	}
	pairs := in.G.Pairs()
	together := make([][]bool, k) // per slot, per pair: co-displayed?
	for s := 0; s < k; s++ {
		together[s] = make([]bool, len(pairs))
		for e, p := range pairs {
			cu := conf.Assign[p[0]][s]
			together[s][e] = cu != Unassigned && cu == conf.Assign[p[1]][s]
		}
	}
	dist := func(a, b int) int {
		d := 0
		for e := range pairs {
			if together[a][e] != together[b][e] {
				d++
			}
		}
		return d
	}
	used := make([]bool, k)
	order := make([]int, 0, k)
	cur := 0
	used[0] = true
	order = append(order, 0)
	for len(order) < k {
		best, bestD := -1, 1<<30
		for s := 0; s < k; s++ {
			if !used[s] {
				if d := dist(cur, s); d < bestD {
					bestD, best = d, s
				}
			}
		}
		used[best] = true
		order = append(order, best)
		cur = best
	}
	out := NewConfiguration(conf.NumUsers(), k)
	for pos, src := range order {
		for u := range conf.Assign {
			out.Assign[u][pos] = conf.Assign[u][src]
		}
	}
	return out, SubgroupEditDistance(in, out)
}
