package core

import (
	"math"
	"testing"
)

// TestWarmStartFloorsAtIncumbent: a warm-started AVG / AVG-D solve never
// returns a configuration scoring below the incumbent it was seeded with —
// the incumbent is the floor of the rounding result — and seeding with the
// solver's own cold result reproduces at least its value.
func TestWarmStartFloorsAtIncumbent(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		in := randomInstance(seed, 9, 8, 2, 0.5)
		cold, _, err := SolveAVGD(in, AVGDOptions{R: 1})
		if err != nil {
			t.Fatal(err)
		}
		coldVal := Evaluate(in, cold).Weighted()

		warm, _, err := SolveAVGD(in, AVGDOptions{R: 1, Warm: cold})
		if err != nil {
			t.Fatal(err)
		}
		if got := Evaluate(in, warm).Weighted(); got < coldVal-1e-9 {
			t.Fatalf("seed %d: warm AVG-D fell below its incumbent: %v -> %v", seed, coldVal, got)
		}
		if err := warm.Validate(in); err != nil {
			t.Fatalf("seed %d: warm AVG-D solution invalid: %v", seed, err)
		}

		avgWarm, _, err := SolveAVG(in, AVGOptions{Seed: seed + 78, Warm: cold})
		if err != nil {
			t.Fatal(err)
		}
		if got := Evaluate(in, avgWarm).Weighted(); got < coldVal-1e-9 {
			t.Fatalf("seed %d: warm AVG fell below its incumbent: %v -> %v", seed, coldVal, got)
		}
		if err := avgWarm.Validate(in); err != nil {
			t.Fatalf("seed %d: warm AVG solution invalid: %v", seed, err)
		}
	}
}

// TestWarmStartIgnoresInvalidIncumbents: a warm configuration that does not
// validate against the instance (wrong shape) or violates the size cap is
// silently ignored — a warm start is an optimization, never a correctness
// input — and the solve still succeeds.
func TestWarmStartIgnoresInvalidIncumbents(t *testing.T) {
	in := randomInstance(5, 8, 6, 2, 0.5)
	wrongShape := NewConfiguration(3, 2) // too few users
	if _, _, err := SolveAVGD(in, AVGDOptions{R: 1, Warm: wrongShape}); err != nil {
		t.Fatalf("mis-shaped warm config failed the solve: %v", err)
	}

	// A valid-but-capped-out incumbent: everyone on the same items overflows
	// any cap below n, so a capped solve must ignore it.
	crowd := NewConfiguration(in.NumUsers(), in.K)
	for u := range crowd.Assign {
		for s := range crowd.Assign[u] {
			crowd.Assign[u][s] = s
		}
	}
	conf, _, err := SolveAVGD(in, AVGDOptions{R: 1, SizeCap: 2, Warm: crowd})
	if err != nil {
		t.Fatalf("capped solve with overflowing warm config: %v", err)
	}
	if got := conf.MaxSubgroupSize(); got > 2 {
		t.Fatalf("capped warm solve violated the cap: max subgroup %d", got)
	}
}

// TestWarmStartSolverIdentity: WarmStart returns a NEW solver biased by a
// CLONE of the incumbent — the receiver is unchanged (solvers are shared
// across worker pools) and later mutation of the caller's configuration does
// not reach the warm solver. Warm solvers are deliberately not CacheKeyers:
// their results depend on the incumbent, so they must never be served from a
// keyed result cache.
func TestWarmStartSolverIdentity(t *testing.T) {
	in := randomInstance(6, 6, 5, 2, 0.5)
	cold, _, err := SolveAVGD(in, AVGDOptions{R: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := &AVGDSolver{Opts: AVGDOptions{R: 1}}
	ws := base.WarmStart(cold)
	if ws == nil {
		t.Fatal("AVG-D WarmStart returned nil")
	}
	if base.Opts.Warm != nil {
		t.Fatal("WarmStart mutated the shared receiver")
	}
	warmed, ok := ws.(*AVGDSolver)
	if !ok {
		t.Fatalf("warm solver is %T, want *AVGDSolver", ws)
	}
	if warmed.Opts.Warm == cold {
		t.Fatal("warm solver aliases the caller's configuration")
	}
	if _, isKeyed := ws.(CacheKeyer); isKeyed {
		t.Fatal("warm solver is a CacheKeyer; warm results must not enter keyed caches")
	}
	// Mutating the caller's copy after WarmStart must not reach the solver.
	first := cold.Assign[0][0]
	cold.Assign[0][0] = cold.Assign[0][1]
	if warmed.Opts.Warm.Assign[0][0] != first {
		t.Fatal("caller mutation leaked into the warm solver's incumbent")
	}
}

// TestBetterOfPrefersHigherValue pins the floor helper itself.
func TestBetterOfPrefersHigherValue(t *testing.T) {
	in := randomInstance(7, 6, 5, 2, 0.5)
	good, _, err := SolveAVGD(in, AVGDOptions{R: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := NewConfiguration(in.NumUsers(), in.K)
	for u := range bad.Assign {
		for s := range bad.Assign[u] {
			bad.Assign[u][s] = s
		}
	}
	if math.Abs(Evaluate(in, good).Weighted()-Evaluate(in, bad).Weighted()) < 1e-12 {
		t.Skip("degenerate instance: good and bad configurations tie")
	}
	if got := betterOf(in, bad, good); Evaluate(in, got).Weighted() != Evaluate(in, good).Weighted() {
		t.Fatal("betterOf kept the worse rounded configuration over the incumbent")
	}
	if got := betterOf(in, good, bad); Evaluate(in, got).Weighted() != Evaluate(in, good).Weighted() {
		t.Fatal("betterOf replaced the better rounded configuration with the incumbent")
	}
}
