package core

import "github.com/svgic/svgic/internal/graph"

// Component decomposition of SVGIC instances.
//
// The SAVG objective (Definition 3) couples users only across social pairs,
// so the connected components of the social network are independent
// subproblems: a configuration for the whole instance restricted to a
// component scores exactly what the same rows score on the component's
// induced sub-instance, and the whole-instance objective is the sum of the
// per-component objectives. The batch engine exploits this to solve
// components concurrently and merge the results with MergeConfigurations.

// ComponentDecompose splits an instance into the sub-instances induced by
// the connected components of its social network, in the canonical order of
// graph.ComponentDecompose (components by smallest user, users ascending).
// The second result maps each sub-instance's rows back to original user ids,
// in the form MergeConfigurations expects.
//
// A connected instance (or one with no users) is returned as-is in a
// one-element slice with an identity mapping, with no copying.
func ComponentDecompose(in *Instance) ([]*Instance, [][]int) {
	comps := graph.ComponentDecompose(in.G)
	if len(comps) <= 1 {
		n := in.NumUsers()
		ident := make([]int, n)
		for u := range ident {
			ident[u] = u
		}
		return []*Instance{in}, [][]int{ident}
	}
	subs := make([]*Instance, len(comps))
	origs := make([][]int, len(comps))
	for i, comp := range comps {
		sub, orig, err := SubInstance(in, comp)
		if err != nil {
			// comp comes straight from the instance's own graph: in-range,
			// duplicate-free by construction.
			panic("core: ComponentDecompose: " + err.Error())
		}
		subs[i] = sub
		origs[i] = orig
	}
	return subs, origs
}
