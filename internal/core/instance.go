// Package core implements the paper's primary contribution: the SVGIC /
// SVGIC-ST problems (Social-aware VR Group-Item Configuration), their
// evaluation semantics, the AVG approximation algorithm (LP relaxation +
// Co-display Subgroup Formation rounding), its derandomized variant AVG-D,
// the independent-rounding strawman of Lemma 3, the hardness-construction
// instances, and the practical extensions of Section 5.
package core

import (
	"fmt"
	"math"

	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/lp"
)

// Instance is one SVGIC problem instance: a directed social network over n
// shoppers, m items, k display slots, the preference utilities p(u,c), the
// per-directed-edge social utilities τ(u,v,c) and the preference/social
// trade-off weight λ ∈ [0,1].
type Instance struct {
	G        *graph.Graph
	NumItems int
	K        int
	Lambda   float64
	Pref     [][]float64 // [user][item] preference utility p(u,c) ≥ 0

	tau map[int64][]float64 // directed edge (u,v) -> per-item τ(u,v,·)
}

// NewInstance returns an instance with all-zero utilities.
// The graph is referenced, not copied.
func NewInstance(g *graph.Graph, numItems, k int, lambda float64) *Instance {
	n := g.NumVertices()
	pref := make([][]float64, n)
	for u := range pref {
		pref[u] = make([]float64, numItems)
	}
	return &Instance{
		//lint:ignore cloneescape documented contract: the graph is referenced, not copied — callers share immutable graphs across instances and Clone() deep-copies when mutation is coming
		G:        g,
		NumItems: numItems,
		K:        k,
		Lambda:   lambda,
		Pref:     pref,
		tau:      make(map[int64][]float64),
	}
}

// NumUsers returns the number of shoppers.
func (in *Instance) NumUsers() int { return in.G.NumVertices() }

// Clone returns a deep copy of the instance: the graph, the preference
// matrix and every τ vector are private to the copy. Layers that mutate
// instances in place — the dynamic session's Leave zeroes utility rows, a
// drift-repair snapshot races concurrent events — clone first so the
// caller's instance (and any cache entry sharing it) stays intact.
func (in *Instance) Clone() *Instance {
	c := NewInstance(in.G.Clone(), in.NumItems, in.K, in.Lambda)
	for u := range in.Pref {
		copy(c.Pref[u], in.Pref[u])
	}
	for key, vec := range in.tau {
		c.tau[key] = append([]float64(nil), vec...)
	}
	return c
}

func (in *Instance) edgeKey(u, v int) int64 {
	return int64(u)*int64(in.NumUsers()) + int64(v)
}

// SetPref sets the preference utility p(u,c).
func (in *Instance) SetPref(u, c int, p float64) { in.Pref[u][c] = p }

// SetTau sets the social utility τ(u,v,c) of user u viewing item c together
// with user v. The directed edge (u,v) must exist in the graph.
func (in *Instance) SetTau(u, v, c int, t float64) error {
	if !in.G.HasEdge(u, v) {
		return fmt.Errorf("core: τ(%d,%d,·) set on a non-edge", u, v)
	}
	k := in.edgeKey(u, v)
	vec, ok := in.tau[k]
	if !ok {
		vec = make([]float64, in.NumItems)
		in.tau[k] = vec
	}
	vec[c] = t
	return nil
}

// Tau returns the social utility τ(u,v,c); zero when the directed edge (u,v)
// is absent or no utility was set.
func (in *Instance) Tau(u, v, c int) float64 {
	if vec, ok := in.tau[in.edgeKey(u, v)]; ok {
		return vec[c]
	}
	return 0
}

// PairSocial returns the combined social weight of the social pair {u,v} on
// item c: τ(u,v,c) + τ(v,u,c) counting only existing directed edges.
func (in *Instance) PairSocial(u, v, c int) float64 {
	return in.Tau(u, v, c) + in.Tau(v, u, c)
}

// Validate checks structural sanity: k ≤ m (otherwise the no-duplication
// constraint is unsatisfiable), λ in range, non-negative finite utilities.
//
// Every numeric check rejects NaN and ±Inf explicitly: range comparisons are
// false for NaN, so without the finiteness guards a NaN λ, preference or τ
// would slip through and silently poison the LP coefficients, the CSF scores
// and the instance fingerprint. This is the trust boundary for untrusted
// JSON entering through the CLI and the svgicd serving path.
func (in *Instance) Validate() error {
	if in.K <= 0 {
		return fmt.Errorf("core: k=%d must be positive", in.K)
	}
	if in.K > in.NumItems {
		return fmt.Errorf("core: k=%d exceeds m=%d; the no-duplication constraint is unsatisfiable", in.K, in.NumItems)
	}
	if !isFinite(in.Lambda) {
		return fmt.Errorf("core: λ=%v is not finite", in.Lambda)
	}
	if in.Lambda < 0 || in.Lambda > 1 {
		return fmt.Errorf("core: λ=%g out of [0,1]", in.Lambda)
	}
	for u, row := range in.Pref {
		if len(row) != in.NumItems {
			return fmt.Errorf("core: preference row %d has %d items, want %d", u, len(row), in.NumItems)
		}
		for c, p := range row {
			if !isFinite(p) {
				return fmt.Errorf("core: p(%d,%d)=%v is not finite", u, c, p)
			}
			if p < 0 {
				return fmt.Errorf("core: p(%d,%d)=%g is negative", u, c, p)
			}
		}
	}
	for key, vec := range in.tau {
		n := int64(in.NumUsers())
		for c, t := range vec {
			if !isFinite(t) {
				return fmt.Errorf("core: τ(%d,%d,%d)=%v is not finite", key/n, key%n, c, t)
			}
			if t < 0 {
				return fmt.Errorf("core: τ(%d,%d,%d)=%g is negative", key/n, key%n, c, t)
			}
		}
	}
	return nil
}

// isFinite reports whether x is neither NaN nor ±Inf.
func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// PrefCoef returns the weighted preference coefficients aP[u][c] = (1−λ)·p(u,c)
// optionally scaled per item by itemWeight (commodity values, Extension A;
// nil means all ones).
func (in *Instance) PrefCoef(itemWeight []float64) [][]float64 {
	n := in.NumUsers()
	out := make([][]float64, n)
	w := 1 - in.Lambda
	for u := 0; u < n; u++ {
		row := make([]float64, in.NumItems)
		for c := 0; c < in.NumItems; c++ {
			row[c] = w * in.Pref[u][c]
			if itemWeight != nil {
				row[c] *= itemWeight[c]
			}
		}
		out[u] = row
	}
	return out
}

// PairCoef returns the weighted social coefficients
// aS[pair][c] = λ·(τ(u,v,c)+τ(v,u,c)), optionally scaled per item.
func (in *Instance) PairCoef(itemWeight []float64) [][]float64 {
	pairs := in.G.Pairs()
	out := make([][]float64, len(pairs))
	for e, p := range pairs {
		row := make([]float64, in.NumItems)
		for c := 0; c < in.NumItems; c++ {
			row[c] = in.Lambda * in.PairSocial(p[0], p[1], c)
			if itemWeight != nil {
				row[c] *= itemWeight[c]
			}
		}
		out[e] = row
	}
	return out
}

// Relaxation builds the condensed LP_SIMP relaxation (Observation 2) of this
// instance for the lp package.
func (in *Instance) Relaxation() *lp.Relaxation {
	return &lp.Relaxation{
		NumUsers: in.NumUsers(),
		NumItems: in.NumItems,
		K:        in.K,
		Pref:     in.PrefCoef(nil),
		Pairs:    in.G.Pairs(),
		PairW:    in.PairCoef(nil),
	}
}
