package core

import (
	"strings"
	"testing"
)

const strictExample = `{
  "users": 2, "items": 3, "slots": 2, "lambda": 0.5,
  "preferences": [[1, 0.5, 0], [0.9, 0.1, 0.2]],
  "social": [{"from": 0, "to": 1, "tau": [0.4, 0, 0]}]
}`

func TestUnmarshalInstanceStrictAcceptsCanonicalSchema(t *testing.T) {
	in, err := UnmarshalInstanceStrict([]byte(strictExample))
	if err != nil {
		t.Fatal(err)
	}
	if in.NumUsers() != 2 || in.NumItems != 3 || in.K != 2 {
		t.Fatalf("wrong shape: %d users, %d items, %d slots", in.NumUsers(), in.NumItems, in.K)
	}
	// Round-trip: MarshalInstance emits only canonical fields, so its output
	// must always strict-decode.
	data, err := MarshalInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalInstanceStrict(data); err != nil {
		t.Fatalf("canonical marshal output rejected by strict decode: %v", err)
	}
}

// TestUnmarshalInstanceStrictRejectsUnknownFields is the regression test for
// the silent-typo bug: a tolerant json.Unmarshal drops "preference" (missing
// the final s) and the solver runs on a zero-utility instance.
func TestUnmarshalInstanceStrictRejectsUnknownFields(t *testing.T) {
	typo := `{
	  "users": 2, "items": 3, "slots": 2, "lambda": 0.5,
	  "preference": [[1, 0.5, 0], [0.9, 0.1, 0.2]]
	}`
	_, err := UnmarshalInstanceStrict([]byte(typo))
	if err == nil {
		t.Fatal("misspelled \"preference\" accepted by strict decode")
	}
	if !strings.Contains(err.Error(), "preference") {
		t.Errorf("error %q does not name the unknown field", err)
	}

	// A misspelled "social" is nastier: the tolerant decode accepts it and
	// silently zeroes every τ; the strict decode refuses.
	socialTypo := `{
	  "users": 2, "items": 3, "slots": 2, "lambda": 0.5,
	  "preferences": [[1, 0.5, 0], [0.9, 0.1, 0.2]],
	  "socials": [{"from": 0, "to": 1, "tau": [0.4, 0, 0]}]
	}`
	if in, terr := UnmarshalInstance([]byte(socialTypo)); terr != nil {
		t.Fatalf("tolerant decode unexpectedly failed: %v", terr)
	} else if in.Tau(0, 1, 0) != 0 {
		t.Fatal("tolerant decode kept τ — test premise broken")
	}
	if _, err := UnmarshalInstanceStrict([]byte(socialTypo)); err == nil {
		t.Fatal("misspelled \"social\" accepted by strict decode")
	}
}

func TestUnmarshalInstanceStrictRejectsTrailingGarbage(t *testing.T) {
	if _, err := UnmarshalInstanceStrict([]byte(strictExample + `{"users": 1}`)); err == nil {
		t.Fatal("trailing second document accepted")
	}
	if _, err := UnmarshalInstanceStrict([]byte(strictExample + " \n\t ")); err != nil {
		t.Fatalf("trailing whitespace rejected: %v", err)
	}
}

func TestDecodeStrictArbitraryWrapper(t *testing.T) {
	type wrapper struct {
		InstanceJSON
		SizeCap int `json:"sizeCap"`
	}
	var w wrapper
	if err := DecodeStrict(strings.NewReader(`{"users":1,"items":2,"slots":1,"preferences":[[1,0]],"sizeCap":3}`), &w); err != nil {
		t.Fatal(err)
	}
	if w.SizeCap != 3 || w.Users != 1 {
		t.Fatalf("wrapper mis-decoded: %+v", w)
	}
	if err := DecodeStrict(strings.NewReader(`{"users":1,"sizecapp":3}`), &w); err == nil {
		t.Fatal("unknown wrapper field accepted")
	}
}
