package core

import (
	"math"
	"strings"
	"testing"

	"github.com/svgic/svgic/internal/graph"
)

// validInstance builds a small instance that passes Validate, for the
// perturbation tests below to break one field at a time.
func validInstance(t *testing.T) *Instance {
	t.Helper()
	g := graph.New(3)
	g.AddMutualEdge(0, 1)
	g.AddMutualEdge(1, 2)
	in := NewInstance(g, 4, 2, 0.5)
	in.SetPref(0, 0, 1)
	in.SetPref(1, 1, 0.5)
	if err := in.SetTau(0, 1, 0, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("baseline instance invalid: %v", err)
	}
	return in
}

// TestValidateRejectsNonFinite is the regression test for the NaN/Inf hole:
// every numeric Validate check used to be a `< 0` or range comparison, which
// is false for NaN, so non-finite λ, preferences and τ all passed and
// silently poisoned the LP, the CSF scores and the fingerprint.
func TestValidateRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	posInf := math.Inf(1)
	negInf := math.Inf(-1)

	cases := []struct {
		name    string
		mutate  func(in *Instance)
		errWant string
	}{
		{"lambda NaN", func(in *Instance) { in.Lambda = nan }, "λ"},
		{"lambda +Inf", func(in *Instance) { in.Lambda = posInf }, "λ"},
		{"lambda -Inf", func(in *Instance) { in.Lambda = negInf }, "λ"},
		{"pref NaN", func(in *Instance) { in.Pref[1][2] = nan }, "p(1,2)"},
		{"pref +Inf", func(in *Instance) { in.Pref[0][0] = posInf }, "p(0,0)"},
		{"pref -Inf", func(in *Instance) { in.Pref[2][3] = negInf }, "p(2,3)"},
		{"tau NaN", func(in *Instance) {
			if err := in.SetTau(0, 1, 1, nan); err != nil {
				t.Fatal(err)
			}
		}, "τ(0,1,1)"},
		{"tau +Inf", func(in *Instance) {
			if err := in.SetTau(1, 0, 2, posInf); err != nil {
				t.Fatal(err)
			}
		}, "τ(1,0,2)"},
		{"tau -Inf", func(in *Instance) {
			if err := in.SetTau(1, 2, 0, negInf); err != nil {
				t.Fatal(err)
			}
		}, "τ(1,2,0)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := validInstance(t)
			tc.mutate(in)
			err := in.Validate()
			if err == nil {
				t.Fatalf("%s passed Validate", tc.name)
			}
			if !strings.Contains(err.Error(), "not finite") {
				t.Errorf("error %q does not name non-finiteness", err)
			}
			if !strings.Contains(err.Error(), tc.errWant) {
				t.Errorf("error %q does not locate the bad value (want %q)", err, tc.errWant)
			}
		})
	}
}

// TestValidateStillRejectsNegatives: the finiteness guards must not mask the
// pre-existing sign and range checks.
func TestValidateStillRejectsNegatives(t *testing.T) {
	in := validInstance(t)
	in.Pref[0][1] = -0.5
	if err := in.Validate(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative preference: err = %v", err)
	}

	in = validInstance(t)
	if err := in.SetTau(0, 1, 3, -1); err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative τ: err = %v", err)
	}

	in = validInstance(t)
	in.Lambda = 1.5
	if err := in.Validate(); err == nil || !strings.Contains(err.Error(), "out of [0,1]") {
		t.Errorf("λ out of range: err = %v", err)
	}
}

// TestInstanceFromJSONRejectsNonFinite: callers constructing the interchange
// struct programmatically (the server's batch path does) bypass the JSON
// decoder, so InstanceFromJSON itself must end at Validate and reject
// non-finite values.
func TestInstanceFromJSONRejectsNonFinite(t *testing.T) {
	ij := &InstanceJSON{
		Users:       2,
		Items:       2,
		Slots:       1,
		Lambda:      0.5,
		Preferences: [][]float64{{1, math.NaN()}, {0, 0}},
	}
	if _, err := InstanceFromJSON(ij); err == nil {
		t.Fatal("NaN preference passed InstanceFromJSON")
	}
	ij.Preferences = [][]float64{{1, 0}, {0, 0}}
	ij.Lambda = math.Inf(1)
	if _, err := InstanceFromJSON(ij); err == nil {
		t.Fatal("+Inf λ passed InstanceFromJSON")
	}
}
