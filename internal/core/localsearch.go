package core

// LocalSearch improves a configuration by repeated exact per-user best
// responses (each an assignment problem over the user's slots × items, see
// assignment.go) until a fixed point or maxPasses sweeps. It is the local-
// search refinement the paper sketches for the dynamic scenario and the
// subgroup-change extension, packaged as a general post-optimizer: it never
// decreases the objective and preserves validity and the SVGIC-ST size cap.
//
// It returns the total objective improvement.
func LocalSearch(in *Instance, conf *Configuration, maxPasses, cap int) float64 {
	if maxPasses <= 0 {
		maxPasses = 3
	}
	var total float64
	for pass := 0; pass < maxPasses; pass++ {
		var improved float64
		for u := 0; u < in.NumUsers(); u++ {
			improved += BestResponse(in, conf, u, cap)
		}
		total += improved
		if improved <= 1e-12 {
			break
		}
	}
	return total
}
