package core

import "math"

// AlignSlots improves a configuration by permuting each user's own items
// among their slots — items and subgroups stay fixed, only their positions
// move. Alignment is exactly what distinguishes SVGIC from itemset selection
// (paper §3.4): two friends holding a common item only realize full social
// utility when it sits at the same slot. Under SVGIC-ST semantics, aligning
// turns d_tel-discounted indirect co-display into full direct co-display.
//
// Each pass solves, per user, a k×k assignment problem (their current items
// × slots) against the rest of the configuration, with the gain of placing
// item c at slot s being the preference term plus full τ for friends showing
// c at s and d_tel·τ for friends showing c elsewhere. Passes repeat until a
// fixed point or maxPasses. The objective never decreases; with cap > 0 the
// SVGIC-ST subgroup bound is respected.
//
// It returns the total EvaluateST objective improvement.
func AlignSlots(in *Instance, conf *Configuration, dtel float64, maxPasses, cap int) float64 {
	if maxPasses <= 0 {
		maxPasses = 4
	}
	before := EvaluateST(in, conf, dtel).Weighted()
	k := in.K
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for u := 0; u < in.NumUsers(); u++ {
			if alignUser(in, conf, u, dtel, cap) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	_ = k
	return EvaluateST(in, conf, dtel).Weighted() - before
}

// alignUser optimally permutes user u's items across their slots, returning
// whether the assignment changed.
func alignUser(in *Instance, conf *Configuration, u int, dtel float64, cap int) bool {
	k := in.K
	items := make([]int, k)
	copy(items, conf.Assign[u])
	// Gain of placing items[i] at slot s. The preference term is permutation-
	// invariant, so only social terms matter; it is kept for clarity of the
	// matrix semantics.
	gain := make([][]float64, k)
	for i := 0; i < k; i++ {
		gain[i] = make([]float64, k)
		c := items[i]
		for s := 0; s < k; s++ {
			if cap > 0 && conf.Assign[u][s] != c && subgroupSizeAt(conf, c, s, u) >= cap {
				gain[i][s] = capBlocked
				continue
			}
			g := (1 - in.Lambda) * in.Pref[u][c]
			for _, v := range in.G.Neighbors(u) {
				// Both directions realize when aligned; both are discounted
				// when the friend holds c at another slot.
				w := in.PairSocial(u, v, c)
				if conf.Assign[v][s] == c {
					g += in.Lambda * w
				} else if dtel > 0 && holdsItem(conf, v, c) {
					g += in.Lambda * dtel * w
				}
			}
			gain[i][s] = g
		}
	}
	assign, _ := MaxAssignment(gain)
	if assign == nil {
		return false
	}
	newRow := make([]int, k)
	feasible := true
	for i, s := range assign {
		if gain[i][s] <= capBlocked/2 {
			feasible = false
			break
		}
		newRow[s] = items[i]
	}
	if !feasible {
		return false
	}
	changed := false
	for s := 0; s < k; s++ {
		if conf.Assign[u][s] != newRow[s] {
			changed = true
		}
	}
	if !changed {
		return false
	}
	// Accept only non-decreasing moves under the exact ST objective: the
	// per-user matrix ignores how the move affects neighbours' own direct
	// alignments, so verify globally.
	old := make([]int, k)
	copy(old, conf.Assign[u])
	beforeVal := EvaluateST(in, conf, dtel).Weighted()
	copy(conf.Assign[u], newRow)
	if EvaluateST(in, conf, dtel).Weighted() < beforeVal-1e-12 {
		copy(conf.Assign[u], old)
		return false
	}
	return true
}

func subgroupSizeAt(conf *Configuration, c, s, except int) int {
	count := 0
	for v := range conf.Assign {
		if v != except && conf.Assign[v][s] == c {
			count++
		}
	}
	return count
}

func holdsItem(conf *Configuration, v, c int) bool {
	for _, it := range conf.Assign[v] {
		if it == c {
			return true
		}
	}
	return false
}

// bestAlignmentValue is a test helper computing the optimum of a gain matrix
// directly; exported through tests only.
func bestAlignmentValue(gain [][]float64) float64 {
	_, v := MaxAssignment(gain)
	if math.IsInf(v, -1) {
		return 0
	}
	return v
}
