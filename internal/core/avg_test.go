package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/lp"
	"github.com/svgic/svgic/internal/stats"
)

// randomInstance builds a deterministic random instance for property tests.
func randomInstance(seed uint64, n, m, k int, lambda float64) *Instance {
	r := stats.NewRand(seed)
	g := graph.ErdosRenyi(n, 0.4, r)
	in := NewInstance(g, m, k, lambda)
	for u := 0; u < n; u++ {
		for c := 0; c < m; c++ {
			in.SetPref(u, c, r.Float64())
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			for c := 0; c < m; c++ {
				if r.Float64() < 0.5 {
					must(in.SetTau(u, v, c, 0.6*r.Float64()))
				}
			}
		}
	}
	return in
}

func TestSolveAVGProducesValidConfigurations(t *testing.T) {
	err := quick.Check(func(seedRaw uint16, nRaw, mRaw, kRaw uint8) bool {
		n := int(nRaw%8) + 2
		k := int(kRaw%3) + 1
		m := k + int(mRaw%6) + 1
		in := randomInstance(uint64(seedRaw), n, m, k, 0.5)
		conf, _, err := SolveAVG(in, AVGOptions{Seed: uint64(seedRaw) + 1})
		if err != nil {
			t.Logf("SolveAVG: %v", err)
			return false
		}
		return conf.Validate(in) == nil
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestSolveAVGDProducesValidConfigurations(t *testing.T) {
	err := quick.Check(func(seedRaw uint16, nRaw, mRaw, kRaw uint8) bool {
		n := int(nRaw%8) + 2
		k := int(kRaw%3) + 1
		m := k + int(mRaw%6) + 1
		in := randomInstance(uint64(seedRaw), n, m, k, 0.5)
		conf, _, err := SolveAVGD(in, AVGDOptions{})
		if err != nil {
			t.Logf("SolveAVGD: %v", err)
			return false
		}
		return conf.Validate(in) == nil
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestAVGDFourApproximationInvariant(t *testing.T) {
	// With r = 1/4, AVG-D's value must be at least a quarter of the LP
	// objective of the fractional solution it rounded (the paper's
	// Theorem 5, which holds for any feasible fractional input).
	for seed := uint64(1); seed <= 25; seed++ {
		in := randomInstance(seed, 2+int(seed%7), 6, 2, 0.5)
		conf, st, err := SolveAVGD(in, AVGDOptions{R: DefaultR})
		if err != nil {
			t.Fatal(err)
		}
		got := Evaluate(in, conf).Weighted()
		if got < st.LPObjective/4-1e-9 {
			t.Errorf("seed %d: AVG-D %.6f < LP/4 = %.6f", seed, got, st.LPObjective/4)
		}
	}
}

func TestAVGDFullRescanEquivalence(t *testing.T) {
	// The dirty row/column caching must be behaviourally invisible: with and
	// without it, AVG-D makes identical choices.
	for seed := uint64(1); seed <= 10; seed++ {
		in := randomInstance(seed, 3+int(seed%6), 7, 2, 0.5)
		f, err := SolveRelaxation(in, LPStructured, defaultTestLP())
		if err != nil {
			t.Fatal(err)
		}
		inc, _ := RoundAVGD(in, f, AVGDOptions{R: 0.7})
		full, _ := RoundAVGD(in, f, AVGDOptions{R: 0.7, FullRescan: true})
		for u := range inc.Assign {
			for s := range inc.Assign[u] {
				if inc.Assign[u][s] != full.Assign[u][s] {
					t.Fatalf("seed %d: incremental and full-rescan AVG-D diverge at (%d,%d): %d vs %d",
						seed, u, s, inc.Assign[u][s], full.Assign[u][s])
				}
			}
		}
	}
}

func TestAVGSamplingModesBothComplete(t *testing.T) {
	in := randomInstance(3, 6, 8, 3, 0.5)
	f, err := SolveRelaxation(in, LPStructured, defaultTestLP())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []SamplingMode{SamplingAdvanced, SamplingOriginal} {
		conf, st := RoundAVG(in, f, AVGOptions{Seed: 5, Sampling: mode})
		if err := conf.Validate(in); err != nil {
			t.Errorf("%v sampling: %v", mode, err)
		}
		if mode == SamplingOriginal && st.Idle == 0 {
			t.Error("original sampling reported zero idle draws — suspicious for k=3")
		}
		if mode == SamplingAdvanced && st.Idle != 0 {
			t.Errorf("advanced sampling had %d idle draws", st.Idle)
		}
	}
}

func TestAVGSizeCapRespected(t *testing.T) {
	err := quick.Check(func(seedRaw uint16, capRaw uint8) bool {
		cap := int(capRaw%4) + 1
		n := 8
		m := 10
		in := randomInstance(uint64(seedRaw), n, m, 2, 0.5)
		if n > m*cap {
			return true
		}
		conf, _, err := SolveAVG(in, AVGOptions{Seed: uint64(seedRaw), SizeCap: cap})
		if err != nil {
			t.Logf("SolveAVG(ST): %v", err)
			return false
		}
		return conf.Validate(in) == nil && conf.SizeViolations(cap) == 0
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestAVGDSizeCapRespected(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		cap := 1 + int(seed%3)
		in := randomInstance(seed, 8, 10, 2, 0.5)
		conf, _, err := SolveAVGD(in, AVGDOptions{SizeCap: cap})
		if err != nil {
			t.Fatal(err)
		}
		if err := conf.Validate(in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v := conf.SizeViolations(cap); v != 0 {
			t.Errorf("seed %d: %d size violations at cap %d", seed, v, cap)
		}
	}
}

func TestSizeCapInfeasibleRejected(t *testing.T) {
	in := randomInstance(1, 9, 4, 2, 0.5) // 9 users > 4 items × cap 2
	if _, _, err := SolveAVG(in, AVGOptions{SizeCap: 2}); err == nil {
		t.Error("infeasible cap accepted by AVG")
	}
	if _, _, err := SolveAVGD(in, AVGDOptions{SizeCap: 2}); err == nil {
		t.Error("infeasible cap accepted by AVG-D")
	}
}

func TestLambdaZeroShortcut(t *testing.T) {
	in := randomInstance(5, 6, 8, 3, 0)
	conf, _, err := SolveAVG(in, AVGOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := PersonalizedConfig(in)
	for u := range want.Assign {
		for s := range want.Assign[u] {
			if conf.Assign[u][s] != want.Assign[u][s] {
				t.Fatalf("λ=0 shortcut differs from top-k at (%d,%d)", u, s)
			}
		}
	}
	// AVG-D takes the same shortcut at λ=0.
	confD, _, err := SolveAVGD(in, AVGDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if Evaluate(in, confD).Weighted() < Evaluate(in, conf).Weighted()-1e-9 {
		t.Error("AVG-D below the λ=0 optimum")
	}
}

func TestAVGDeterministicPerSeed(t *testing.T) {
	in := randomInstance(8, 6, 8, 3, 0.5)
	a, _, err := SolveAVG(in, AVGOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SolveAVG(in, AVGOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Assign {
		for s := range a.Assign[u] {
			if a.Assign[u][s] != b.Assign[u][s] {
				t.Fatal("same seed produced different configurations")
			}
		}
	}
}

func TestRepeatsNeverHurt(t *testing.T) {
	in := randomInstance(10, 8, 10, 3, 0.5)
	f, err := SolveRelaxation(in, LPStructured, defaultTestLP())
	if err != nil {
		t.Fatal(err)
	}
	one, _ := RoundAVG(in, f, AVGOptions{Seed: 3, Repeats: 1})
	ten, _ := RoundAVG(in, f, AVGOptions{Seed: 3, Repeats: 10})
	if Evaluate(in, ten).Weighted() < Evaluate(in, one).Weighted()-1e-9 {
		t.Error("best-of-10 is worse than the single run with the same base seed")
	}
}

func TestTrivialRoundingWeakOnIndifferentInstance(t *testing.T) {
	// Lemma 3's instance: complete graph, equal τ everywhere, uniform
	// factors; independent rounding recovers ≈ 1/m of CSF's value.
	const n, m, k = 6, 12, 2
	g := graph.Complete(n)
	in := NewInstance(g, m, k, 1)
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			for c := 0; c < m; c++ {
				must(in.SetTau(u, v, c, 0.5))
			}
		}
	}
	X := make([][]float64, n)
	for u := range X {
		X[u] = make([]float64, m)
		for c := range X[u] {
			X[u][c] = float64(k) / float64(m)
		}
	}
	f := FactorsFromCondensed(in, X)
	csfConf, _ := RoundAVG(in, f, AVGOptions{Seed: 2})
	csf := Evaluate(in, csfConf).Weighted()
	var indep float64
	const trials = 30
	for s := uint64(0); s < trials; s++ {
		indep += Evaluate(in, TrivialRounding(in, f, s)).Weighted()
	}
	indep /= trials
	if indep > csf/2 {
		t.Errorf("independent rounding %.3f is not far below CSF %.3f (want ≈ 1/m = %.3f of it)",
			indep, csf, 1/float64(m))
	}
	if math.Abs(csf-float64(n*(n-1))*0.5*float64(k)) > 1e-9 {
		t.Errorf("CSF did not recover the full co-display optimum: %.3f", csf)
	}
}

func TestFactorsFactor(t *testing.T) {
	in := buildPaperExample(0.5)
	f := paperTable6Factors(in)
	if got := f.Factor(0, 0); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Factor = %v, want 1/3", got)
	}
}

func TestSolveRelaxationModesAgree(t *testing.T) {
	in := randomInstance(4, 4, 5, 2, 0.5)
	structured, err := SolveRelaxation(in, LPStructured, defaultTestLP())
	if err != nil {
		t.Fatal(err)
	}
	condensed, err := SolveRelaxation(in, LPSimplexCondensed, defaultTestLP())
	if err != nil {
		t.Fatal(err)
	}
	full, err := SolveRelaxation(in, LPSimplexFull, defaultTestLP())
	if err != nil {
		t.Fatal(err)
	}
	// Exact condensed and exact full share the optimal value (Observation 2);
	// the structured solver lower-bounds it.
	if math.Abs(condensed.Objective-full.Objective) > 1e-5 {
		t.Errorf("condensed LP %.6f != full LP %.6f (Observation 2 violated)",
			condensed.Objective, full.Objective)
	}
	if structured.Objective > condensed.Objective+1e-6 {
		t.Errorf("structured %.6f exceeds exact %.6f", structured.Objective, condensed.Objective)
	}
	if structured.Objective < 0.9*condensed.Objective {
		t.Errorf("structured %.6f below 90%% of exact %.6f", structured.Objective, condensed.Objective)
	}
}

func defaultTestLP() lp.RelaxOptions {
	return lp.RelaxOptions{MaxPasses: 50, PolishIters: 80, Restarts: 2}
}
