package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint returns a 64-bit FNV-1a hash over everything that determines a
// solver's output on an instance: user/item/slot counts, λ, the full
// preference matrix and every directed edge with its τ vector (in the
// deterministic order of Graph.Edges). Two instances with equal fingerprints
// are, up to hash collision, the same problem — the engine's memoization
// cache keys on it.
func Fingerprint(in *Instance) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wInt := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	wFloat := func(x float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	wInt(in.NumUsers())
	wInt(in.NumItems)
	wInt(in.K)
	wFloat(in.Lambda)
	for _, row := range in.Pref {
		for _, p := range row {
			wFloat(p)
		}
	}
	for _, e := range in.G.Edges() {
		wInt(e[0])
		wInt(e[1])
		for c := 0; c < in.NumItems; c++ {
			wFloat(in.Tau(e[0], e[1], c))
		}
	}
	return h.Sum64()
}
