package svgic

import (
	"github.com/svgic/svgic/internal/session"
)

// Live sessions promote the dynamic scenario (Extension F) to a stateful
// serving path: a SessionManager holds ID-keyed, versioned sessions, each
// wrapping a DynamicSession behind a serializing lock, mutated by typed
// JSON-encodable events, bounded in count, evicted when idle, and kept
// near-optimal by background drift repair — periodic full re-solves through
// the shared Engine that are atomically swapped in when they beat the
// incrementally maintained configuration by a margin. The manager is
// internally sharded: session ids hash (FNV-1a) onto
// SessionManagerOptions.Shards independent lock domains (default GOMAXPROCS),
// each with a pinned owner goroutine for its eviction and repair, so serving
// throughput scales with cores instead of serializing behind one lock.
//
//	eng := svgic.NewEngine(svgic.EngineOptions{})
//	defer eng.Close()
//	mgr, err := svgic.NewSessionManager(svgic.SessionManagerOptions{
//		Engine:         eng,
//		RepairInterval: 30 * time.Second,
//	})
//	defer mgr.Close()
//	snap, _, err := mgr.CreateWith(ctx, in, svgic.SessionCreateSpec{})
//	res, err := mgr.Apply(snap.ID, []svgic.SessionEvent{
//		{Type: svgic.SessionEventJoin, Pref: pref, Friends: ties},
//	})
//
// svgicd serves the same manager over HTTP (POST /v1/sessions, POST
// /v1/sessions/{id}/events, GET/DELETE /v1/sessions/{id}); cmd/datagen
// -events emits replayable SessionTrace documents.
type (
	// SessionManager is the concurrency-safe registry of live sessions.
	SessionManager = session.Manager
	// SessionManagerOptions configures NewSessionManager: engine, shard
	// count, session bound, idle TTL and the drift-repair interval/margin.
	SessionManagerOptions = session.Options
	// SessionEvent is one typed live-session event (join, leave,
	// updatePreference, rebalance).
	SessionEvent = session.Event
	// SessionEventType names a SessionEvent kind.
	SessionEventType = session.EventType
	// SessionEventResult reports what applying one event did.
	SessionEventResult = session.EventResult
	// SessionApplyResult reports an event batch's outcome: version, value
	// and per-event results.
	SessionApplyResult = session.ApplyResult
	// SessionSnapshot is a point-in-time copy of one session's state.
	SessionSnapshot = session.Snapshot
	// SessionMetrics is the per-session counter block.
	SessionMetrics = session.Metrics
	// SessionManagerStats aggregates the manager's admission, event and
	// drift-repair counters.
	SessionManagerStats = session.Stats
	// SessionShardStats is one shard's slice of the manager counters —
	// SessionManager.ShardStats returns one per lock domain, for routing
	// imbalance and hot-shard monitoring.
	SessionShardStats = session.ShardStats
	// SessionTie is the wire form of one friend tie in a join event.
	SessionTie = session.TieJSON
	// SessionTrace is a replayable live-session workload: an instance plus
	// an event stream valid against it.
	SessionTrace = session.TraceJSON
)

// The live-session event kinds.
const (
	SessionEventJoin             = session.EventJoin
	SessionEventLeave            = session.EventLeave
	SessionEventUpdatePreference = session.EventUpdatePreference
	SessionEventRebalance        = session.EventRebalance
)

// Live-session serving errors.
var (
	// ErrSessionLimit is returned by Create when the manager is at its
	// session bound (HTTP: 429).
	ErrSessionLimit = session.ErrLimit
	// ErrSessionNotFound is returned for unknown, deleted or evicted
	// session ids (HTTP: 404).
	ErrSessionNotFound = session.ErrNotFound
)

// NewSessionManager starts a live-session manager over an engine. Close the
// manager before closing the engine.
func NewSessionManager(opts SessionManagerOptions) (*SessionManager, error) {
	return session.NewManager(opts)
}

// ApplySessionEvent applies one event directly to a DynamicSession — the
// same semantics the manager uses, for offline replay and equivalence
// checks.
func ApplySessionEvent(ds *DynamicSession, ev SessionEvent) (SessionEventResult, error) {
	return session.Apply(ds, ev)
}

// ReplaySessionEvents applies a whole trace to a DynamicSession, stopping at
// the first failing event and returning how many applied.
func ReplaySessionEvents(ds *DynamicSession, events []SessionEvent) (int, error) {
	return session.Replay(ds, events)
}

// GenerateSessionEvents produces a deterministic churn stream (joins with
// friend ties, leaves, preference updates, rebalances) valid against a
// session that starts with initialUsers shoppers over numItems items.
func GenerateSessionEvents(initialUsers, numItems, count int, seed uint64) []SessionEvent {
	return session.GenerateEvents(initialUsers, numItems, count, seed)
}

// NewSessionTrace builds a replayable trace over an instance: its
// interchange form plus count generated churn events.
func NewSessionTrace(in *Instance, sizeCap, count int, seed uint64) *SessionTrace {
	return session.NewTrace(in, sizeCap, count, seed)
}
