package svgic

import (
	"github.com/svgic/svgic/internal/session"
	"github.com/svgic/svgic/internal/store"
)

// The durable session store persists live sessions (write-ahead event log +
// periodic snapshots, per session) and recovers them after a crash or
// restart: load the latest snapshot, replay the WAL tail through the same
// Apply semantics the live path uses, and the recovered session serves the
// identical (version, value, configuration) it served before.
//
//	backend, err := svgic.NewFSStoreBackend("/var/lib/svgic")
//	st, err := svgic.OpenSessionStore(svgic.SessionStoreOptions{
//		Backend: backend,
//		Sync:    svgic.SyncAlways,
//	})
//	defer st.Close() // after mgr.Close
//	recovered, err := st.Recover()
//	mgr, err := svgic.NewSessionManager(svgic.SessionManagerOptions{
//		Engine:    eng,
//		Persister: st,
//	})
//	for _, rec := range recovered {
//		mgr.Restore(rec.State, nil, rec.SinceSnapshot)
//	}
//
// svgicd wires the same pieces behind -data-dir / -fsync / -snapshot-every.
type (
	// SessionStore is the durable session store: it implements
	// SessionPersister over a Backend and rebuilds sessions with Recover.
	SessionStore = store.Store
	// SessionStoreOptions configures OpenSessionStore: backend, fsync
	// policy, writer shards and queue depth.
	SessionStoreOptions = store.Options
	// SessionStoreStats is the store's counter snapshot (appends, fsyncs,
	// snapshots, compactions, recovery outcomes).
	SessionStoreStats = store.Stats
	// StoreBackend is the byte-moving interface under a SessionStore; the
	// filesystem backend is the built-in implementation.
	StoreBackend = store.Backend
	// StoreSyncPolicy says when WAL appends are fsynced.
	StoreSyncPolicy = store.SyncPolicy
	// RecoveredSession is one session rebuilt by Recover, ready for
	// SessionManager.Restore.
	RecoveredSession = store.Recovered
	// SessionPersister receives a manager's durability hooks; SessionStore
	// implements it.
	SessionPersister = session.Persister
	// SessionState is the full durable image of one live session.
	SessionState = session.State
	// SessionSolverRef names the registry solver backing a session, so
	// recovery can re-resolve it.
	SessionSolverRef = session.SolverRef
	// SessionCreateSpec is SessionManager.CreateWith's full specification —
	// the one session-creation surface: solver, SVGIC-ST cap, the persisted
	// solver reference and the per-session idle-TTL override.
	SessionCreateSpec = session.CreateSpec
)

// The WAL fsync policies.
const (
	// SyncAlways fsyncs after every appended record.
	SyncAlways = store.SyncAlways
	// SyncInterval fsyncs dirty logs on a timer (the default).
	SyncInterval = store.SyncInterval
	// SyncOff never fsyncs.
	SyncOff = store.SyncOff
)

// OpenSessionStore starts a durable session store over a backend. Attach it
// to a manager via SessionManagerOptions.Persister and close it AFTER the
// manager.
func OpenSessionStore(opts SessionStoreOptions) (*SessionStore, error) {
	return store.Open(opts)
}

// NewFSStoreBackend opens (creating if needed) the filesystem store backend
// rooted at dir: one directory per session holding a CRC-framed WAL, an
// atomically replaced snapshot, and a tombstone marker once ended.
func NewFSStoreBackend(dir string) (StoreBackend, error) {
	return store.NewFS(dir)
}
