// Package svgic is a Go library for Social-aware VR Group-Item Configuration
// (SVGIC): given a group of VR shoppers with a social network, per-user item
// preferences and per-pair social utilities, it computes an SAVG
// k-Configuration — which item each user sees at each of k display slots —
// that balances personal preference against the social utility of
// co-displaying common items to subgroups of friends.
//
// It is a faithful reproduction of "Optimizing Item and Subgroup
// Configurations for Social-Aware VR Shopping" (Ko et al., PVLDB 2020):
//
//   - AVG — the paper's randomized 4-approximation: an LP relaxation solved
//     by a built-in structured solver (or an exact simplex), rounded by
//     Co-display Subgroup Formation (CSF) with the advanced focal-parameter
//     sampling scheme.
//   - AVG-D — the derandomized, deterministic 4-approximation.
//   - SVGIC-ST — the extension with subgroup size caps and teleportation-
//     discounted indirect co-display.
//   - The comparison schemes (personalized, group, subgroup-by-friendship,
//     subgroup-by-preference) and an exact branch-and-bound IP solver.
//   - Section 5's practical extensions: commodity values, slot significance,
//     multi-view display, group-wise social models, subgroup-change
//     smoothing and dynamic join/leave.
//
// # Quick start
//
// Every algorithm is a Solver — Solve(ctx, in) returning a rich *Solution
// (configuration + utility report + algorithm name, LP/rounding stats,
// decomposition info and wall time) — and every algorithm is registered by
// name, so the choice of algorithm can be data:
//
//	g := svgic.NewGraph(2)
//	g.AddMutualEdge(0, 1)
//	in := svgic.NewInstance(g, 3 /* items */, 2 /* slots */, 0.5 /* λ */)
//	in.SetPref(0, 0, 1.0)
//	in.SetPref(1, 0, 0.8)
//	_ = in.SetTau(0, 1, 0, 0.5)
//	_ = in.SetTau(1, 0, 0, 0.5)
//	s, err := svgic.NewSolver("avgd", nil) // or svgic.Params{"r": 1.0}
//	if err != nil { ... }
//	sol, err := s.Solve(ctx, in)
//	if err != nil { ... }
//	fmt.Println(sol.Algorithm, sol.Report.Scaled(), sol.Wall)
//
// Solvers honour their context — a canceled ctx stops the LP/rounding
// pipeline at phase boundaries and the exact IP between branch-and-bound
// nodes. SolverNames/Solvers/LookupSolver enumerate the registry ("avg",
// "avgd", "per", "fmg", "sdp", "grf", "ip"); RegisterSolver extends it, and
// new entries are immediately reachable from the CLIs and the HTTP API.
// Typed constructors (AVGD, Personalized, ExactIP, ...) remain for callers
// that want compile-time options.
//
// # Serving many groups
//
// Engine is the concurrent batch-solving layer: it splits instances into the
// connected components of their social networks, solves components in
// parallel on a worker pool under context cancellation, merges the parts
// back (objective-preserving) and memoizes repeated instances behind a
// fingerprint-keyed LRU cache. See NewEngine.
//
// # Serving over the network
//
// Command svgicd (cmd/svgicd, backed by internal/server) puts the engine
// behind HTTP: POST /v1/solve, /v1/solve/batch and /v1/evaluate speak the
// InstanceJSON interchange schema with strict decoding (unknown fields are
// rejected, never dropped), an optional per-request "algo" + "params"
// selection resolving any registered solver (GET /v1/algorithms lists them
// with parameter schemas), bounded in-flight admission control (429 +
// Retry-After under overload), per-request deadlines (?timeout=...),
// request coalescing keyed on (instance fingerprint, solver identity) for
// flash crowds, and graceful drain on shutdown. GET /healthz and /v1/stats
// expose liveness and the engine/admission/coalescing counters, split per
// algorithm. The same binary is its own load generator (svgicd -loadgen,
// optionally mixing algorithms with -algo avgd,per,avg).
//
// # Live sessions
//
// The dynamic scenario (Extension F) is a first-class serving path: a
// SessionManager holds ID-keyed, versioned live stores, each wrapping a
// DynamicSession mutated by typed JSON events (join, leave,
// updatePreference, rebalance) under a serializing lock, with bounded
// admission, TTL idle eviction and background drift repair — periodic full
// re-solves through the Engine, atomically swapped in when they beat the
// incrementally maintained configuration. svgicd serves the same manager
// under /v1/sessions; cmd/datagen -events emits replayable traces and
// `svgicd -loadgen -dynamic` drives churn against the endpoints. See
// NewSessionManager.
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// reproduction of the paper's evaluation, the engine demo, the serving
// layer and the CI lanes.
package svgic

import (
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/lp"
	"github.com/svgic/svgic/internal/utility"
)

// Core problem types (aliases into the implementation package so the full
// method sets are available on the public names).
type (
	// Instance is one SVGIC problem: social network, items, slots, λ and
	// the p / τ utilities.
	Instance = core.Instance
	// Configuration is an SAVG k-Configuration (user × slot → item).
	Configuration = core.Configuration
	// Report decomposes a configuration's objective value.
	Report = core.Report
	// Factors is a fractional LP solution in condensed form.
	Factors = core.Factors
	// Solver is the common interface of all configuration algorithms:
	// Solve(ctx, in) returning a rich *Solution. Implementations must honour
	// the context and be safe for concurrent use.
	Solver = core.Solver
	// RoundingStats describes what AVG/AVG-D's rounding phase did.
	RoundingStats = core.RoundingStats
	// AVGOptions configures the randomized AVG solver.
	AVGOptions = core.AVGOptions
	// AVGDOptions configures the deterministic AVG-D solver.
	AVGDOptions = core.AVGDOptions
	// SubgroupMetrics aggregates per-slot partition statistics.
	SubgroupMetrics = core.SubgroupMetrics
	// MultiViewConfig is a multi-view display configuration (Extension C).
	MultiViewConfig = core.MultiViewConfig
	// DynamicSession supports dynamic user join/leave (Extension F).
	DynamicSession = core.DynamicSession
	// FriendTie carries the per-item social utilities between a joining user
	// and one standing friend (Out = newcomer→friend, In = friend→newcomer).
	FriendTie = core.FriendTie
	// FriendTies maps a standing user's id to a joining user's declared ties.
	FriendTies = core.FriendTies
	// Graph is the directed social network substrate.
	Graph = graph.Graph
	// LPOptions tunes the structured LP relaxation solver.
	LPOptions = lp.RelaxOptions
	// UtilityParams shapes the synthetic utility generator.
	UtilityParams = utility.Params
)

// Unassigned marks an empty display unit in a partial configuration.
const Unassigned = core.Unassigned

// DefaultR is AVG-D's balancing ratio with the proven 4-approximation.
const DefaultR = core.DefaultR

// LP modes for AVG/AVG-D's relaxation phase.
const (
	// LPStructured solves the condensed relaxation with the scalable
	// structured solver (default).
	LPStructured = core.LPStructured
	// LPSimplexCondensed solves the condensed relaxation exactly (small
	// models only).
	LPSimplexCondensed = core.LPSimplexCondensed
	// LPSimplexFull solves the full per-slot relaxation exactly (ablation).
	LPSimplexFull = core.LPSimplexFull
)

// NewGraph returns an empty directed social network over n users.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewInstance returns an SVGIC instance with all-zero utilities over the
// given social network, numItems items, k display slots and social weight
// lambda ∈ [0,1].
func NewInstance(g *Graph, numItems, k int, lambda float64) *Instance {
	return core.NewInstance(g, numItems, k, lambda)
}

// NewConfiguration returns an all-Unassigned configuration (n users × k
// slots), useful for building configurations by hand.
func NewConfiguration(n, k int) *Configuration { return core.NewConfiguration(n, k) }

// SolveAVG runs the randomized AVG pipeline (LP relaxation + CSF rounding).
//
// Deprecated: thin wrapper kept for compatibility; it cannot be canceled and
// returns no Solution. Use NewSolver("avg", params) (or AVG(opts)) and
// Solve(ctx, in) instead.
func SolveAVG(in *Instance, opts AVGOptions) (*Configuration, RoundingStats, error) {
	return core.SolveAVG(in, opts)
}

// SolveAVGD runs the deterministic AVG-D pipeline.
//
// Deprecated: thin wrapper kept for compatibility; it cannot be canceled and
// returns no Solution. Use NewSolver("avgd", params) (or AVGD(opts)) and
// Solve(ctx, in) instead.
func SolveAVGD(in *Instance, opts AVGDOptions) (*Configuration, RoundingStats, error) {
	return core.SolveAVGD(in, opts)
}

// Evaluate scores a configuration under plain SVGIC (Definition 3).
func Evaluate(in *Instance, conf *Configuration) Report { return core.Evaluate(in, conf) }

// EvaluateST scores a configuration under SVGIC-ST semantics: indirect
// co-display (same item, different slots) earns dtel·τ (Definition 5).
func EvaluateST(in *Instance, conf *Configuration, dtel float64) Report {
	return core.EvaluateST(in, conf, dtel)
}

// ComputeSubgroupMetrics derives the subgroup-structure statistics of the
// paper's Section 6.5 from a configuration.
func ComputeSubgroupMetrics(in *Instance, conf *Configuration) SubgroupMetrics {
	return core.ComputeSubgroupMetrics(in, conf)
}

// RegretRatios returns each user's regret ratio reg(u) = 1 − hap(u).
func RegretRatios(in *Instance, conf *Configuration) []float64 {
	return core.RegretRatios(in, conf)
}

// UserUtility returns one user's SAVG utility under a configuration.
func UserUtility(in *Instance, conf *Configuration, u int) float64 {
	return core.UserUtility(in, conf, u)
}

// WeightedInstance scales every item's utilities by commodity values
// (Extension A); run any solver on the result to maximize expected profit.
func WeightedInstance(in *Instance, weight []float64) *Instance {
	return core.WeightedInstance(in, weight)
}

// EvaluateWithSlotWeights scores a configuration with per-slot significance
// weights (Extension B).
func EvaluateWithSlotWeights(in *Instance, conf *Configuration, gamma []float64) float64 {
	return core.EvaluateWithSlotWeights(in, conf, gamma)
}

// OptimizeSlotOrder permutes slots globally so the most valuable slots land
// on the most significant positions (Extension B); value-neutral under
// plain SVGIC.
func OptimizeSlotOrder(in *Instance, conf *Configuration, gamma []float64) *Configuration {
	return core.OptimizeSlotOrder(in, conf, gamma)
}

// GreedyMVD extends a configuration to multi-view display with up to beta
// views per slot (Extension C).
func GreedyMVD(in *Instance, base *Configuration, beta int) *MultiViewConfig {
	return core.GreedyMVD(in, base, beta)
}

// EvaluateMVD scores a multi-view configuration.
func EvaluateMVD(in *Instance, mv *MultiViewConfig) Report { return core.EvaluateMVD(in, mv) }

// StabilizeSubgroups reorders slots to minimize subgroup churn between
// consecutive slots (Extension E), returning the new configuration and its
// edit distance.
func StabilizeSubgroups(in *Instance, conf *Configuration) (*Configuration, int) {
	return core.StabilizeSubgroups(in, conf)
}

// SubgroupEditDistance is the total partition edit distance between
// consecutive slots.
func SubgroupEditDistance(in *Instance, conf *Configuration) int {
	return core.SubgroupEditDistance(in, conf)
}

// NewDynamicSession starts a dynamic join/leave session (Extension F) from a
// solved configuration; cap > 0 enforces the SVGIC-ST subgroup size bound.
func NewDynamicSession(in *Instance, conf *Configuration, cap int) (*DynamicSession, error) {
	return core.NewDynamicSession(in, conf, cap)
}

// DatasetName identifies a built-in synthetic dataset profile.
type DatasetName = datasets.Name

// Built-in dataset profiles emulating the paper's evaluation datasets.
const (
	Timik    = datasets.Timik
	Epinions = datasets.Epinions
	Yelp     = datasets.Yelp
)

// GenerateDataset builds a synthetic SVGIC instance from one of the built-in
// dataset profiles (see internal/datasets for the calibration notes).
func GenerateDataset(name DatasetName, n, m, k int, lambda float64, seed uint64) (*Instance, error) {
	return datasets.Generate(name, n, m, k, lambda, utility.PIERT, seed)
}

// PopulateUtilities fills an instance's p and τ from the synthetic
// PIERT/AGREE/GREE-like generator.
func PopulateUtilities(in *Instance, params UtilityParams, seed uint64) {
	utility.Populate(in, params, seed)
}

// DefaultUtilityParams returns the balanced utility-generator settings.
func DefaultUtilityParams() UtilityParams { return utility.Defaults() }
