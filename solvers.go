package svgic

import (
	"time"

	"github.com/svgic/svgic/internal/baselines"
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/mip"
)

// Typed solver constructors. Every solver satisfies the Solver interface —
// Solve(ctx, in) returning a rich *Solution — so comparison code can treat
// the paper's algorithms and baselines uniformly:
//
//	for _, s := range []svgic.Solver{svgic.AVG(opts), svgic.Personalized()} {
//		sol, err := s.Solve(ctx, in)
//		...
//	}
//
// Prefer NewSolver(name, params) when the algorithm choice is data — a flag,
// a request field, a config file; these constructors remain for callers that
// want compile-time-typed options.

// AVG returns the randomized 4-approximation solver.
func AVG(opts AVGOptions) Solver { return &core.AVGSolver{Opts: opts} }

// AVGD returns the deterministic 4-approximation solver.
func AVGD(opts AVGDOptions) Solver { return &core.AVGDSolver{Opts: opts} }

// Personalized returns the personalized top-k baseline (PER): each user's k
// most preferred items, no social awareness.
func Personalized() Solver { return baselines.PER{} }

// Group returns the group-recommendation baseline (FMG): one shared itemset
// for everyone, greedy by aggregate utility; fairness > 0 reweights towards
// underserved users.
func Group(fairness float64) Solver { return baselines.FMG{Fairness: fairness} }

// SubgroupByFriendship returns the SDP baseline: community-detect the social
// network (or force `groups` balanced groups when groups > 0), then pick one
// itemset per subgroup.
func SubgroupByFriendship(groups int, seed uint64) Solver {
	return baselines.SDP{Groups: groups, Seed: seed}
}

// SubgroupByPreference returns the GRF baseline: cluster users by preference
// similarity (groups = 0 chooses ⌈n/4⌉ clusters), then pick one itemset per
// cluster by aggregate preference.
func SubgroupByPreference(groups int) Solver { return baselines.GRF{Groups: groups} }

// Prepartitioned wraps a solver with balanced social prepartitioning into
// groups of at most m users (the "-P" variants of the SVGIC-ST experiments).
func Prepartitioned(inner Solver, m int, seed uint64) Solver {
	return baselines.Prepartitioned{Inner: inner, M: m, Seed: seed}
}

// ExactIP returns the exact branch-and-bound IP solver (small instances
// only); timeLimit 0 means no limit and the result is a proven optimum. The
// search polls the Solve context between nodes, so cancellation does not
// wait out the time limit.
func ExactIP(timeLimit time.Duration) Solver {
	return baselines.IP{Strategy: mip.Primal, TimeLimit: timeLimit, WarmStart: true}
}
