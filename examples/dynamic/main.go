// Dynamic VR store (Extension F): shoppers join and leave a live session.
// Rather than re-solving the whole instance per event, the session admits a
// newcomer with an exact single-user best response against the standing
// configuration and lets the affected friends react, then runs bounded
// best-response rebalancing — the incremental strategy sketched in the
// paper's Section 5.F.
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"

	svgic "github.com/svgic/svgic"
)

func main() {
	const (
		n      = 16
		m      = 60
		k      = 4
		lambda = 0.5
	)
	in, err := svgic.GenerateDataset(svgic.Timik, n, m, k, lambda, 31)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := svgic.AVGD(svgic.AVGDOptions{}).Solve(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}
	conf := sol.Config
	session, err := svgic.NewDynamicSession(in, conf, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Dynamic session: %d shoppers, %d items, %d slots ===\n\n", n, m, k)
	fmt.Printf("t=0  initial AVG-D configuration        value %.2f\n", session.Value())

	// Two newcomers join: each likes a band of items and is friends with a
	// few shoppers already in the store.
	for j := 0; j < 2; j++ {
		pref := make([]float64, m)
		for c := range pref {
			if (c+j*7)%5 == 0 {
				pref[c] = 0.9
			} else {
				pref[c] = 0.1
			}
		}
		friends := map[int]struct{ Out, In []float64 }{}
		for f := j; f < 6; f += 2 {
			out := make([]float64, m)
			inn := make([]float64, m)
			for c := range out {
				out[c] = 0.3 * pref[c]
				inn[c] = 0.2 * pref[c]
			}
			friends[f] = struct{ Out, In []float64 }{Out: out, In: inn}
		}
		id, err := session.Join(pref, friends)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%d  shopper %d joined (%d friends)      value %.2f\n",
			j+1, id, len(friends), session.Value())
	}

	// A shopper walks out; their friends rebalance.
	if err := session.Leave(3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=3  shopper 3 left                     value %.2f\n", session.Value())

	// Periodic local search keeps the configuration near-stable.
	improved := session.Rebalance(5)
	fmt.Printf("t=4  best-response rebalancing (+%.3f)  value %.2f\n", improved, session.Value())

	fmt.Printf("\nActive shoppers: %v\n", session.ActiveUsers())
	final := session.Config()
	met := svgic.ComputeSubgroupMetrics(session.Instance(), final)
	fmt.Printf("Co-display rate %.1f%%, alone rate %.1f%% after the event stream\n",
		100*met.CoDisplayPct, 100*met.AlonePct)
}
