// Dynamic VR store (Extension F) as a live session: shoppers join, leave
// and change their minds while the configuration is repaired incrementally —
// and a drift-repair cycle re-solves the store in the background, swapping
// the full solution in when it beats the incremental one.
//
// This drives the same session manager svgicd serves over HTTP (POST
// /v1/sessions + /v1/sessions/{id}/events); here it runs in-process through
// the public API.
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"

	svgic "github.com/svgic/svgic"
)

func main() {
	const (
		n      = 16
		m      = 60
		k      = 4
		lambda = 0.5
	)
	in, err := svgic.GenerateDataset(svgic.Timik, n, m, k, lambda, 31)
	if err != nil {
		log.Fatal(err)
	}

	eng := svgic.NewEngine(svgic.EngineOptions{})
	defer eng.Close()
	mgr, err := svgic.NewSessionManager(svgic.SessionManagerOptions{
		Engine:       eng,
		RepairMargin: -1, // swap on any strict improvement, for the demo
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	ctx := context.Background()
	snap, sol, err := mgr.CreateWith(ctx, in, svgic.SessionCreateSpec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Live session %s: %d shoppers, %d items, %d slots ===\n\n", snap.ID, n, m, k)
	fmt.Printf("t=0  created from %s solve            value %.2f\n", sol.Algorithm, snap.Value)

	// Two newcomers join: each likes a band of items and is friends with a
	// few shoppers already in the store. Then shopper 3 walks out, shopper 5
	// changes their mind, and the store rebalances — one event batch, applied
	// in order under the session's serializing lock.
	var events []svgic.SessionEvent
	for j := 0; j < 2; j++ {
		pref := make([]float64, m)
		for c := range pref {
			if (c+j*7)%5 == 0 {
				pref[c] = 0.9
			} else {
				pref[c] = 0.1
			}
		}
		var ties []svgic.SessionTie
		for f := j; f < 6; f += 2 {
			out := make([]float64, m)
			inn := make([]float64, m)
			for c := range out {
				out[c] = 0.3 * pref[c]
				inn[c] = 0.2 * pref[c]
			}
			ties = append(ties, svgic.SessionTie{ID: f, Out: out, In: inn})
		}
		events = append(events, svgic.SessionEvent{Type: svgic.SessionEventJoin, Pref: pref, Friends: ties})
	}
	flipped := make([]float64, m)
	for c := range flipped {
		flipped[m-1-c] = 0.5 + 0.5*float64(c%2)
	}
	events = append(events,
		svgic.SessionEvent{Type: svgic.SessionEventLeave, User: 3},
		svgic.SessionEvent{Type: svgic.SessionEventUpdatePreference, User: 5, Pref: flipped},
		svgic.SessionEvent{Type: svgic.SessionEventRebalance, MaxPasses: 5},
	)
	res, err := mgr.Apply(snap.ID, events)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.Results {
		switch r.Type {
		case svgic.SessionEventJoin:
			fmt.Printf("t=%d  shopper %d joined\n", i+1, r.User)
		case svgic.SessionEventLeave:
			fmt.Printf("t=%d  shopper %d left\n", i+1, r.User)
		case svgic.SessionEventUpdatePreference:
			fmt.Printf("t=%d  shopper %d changed their mind      (+%.3f)\n", i+1, r.User, r.Gain)
		case svgic.SessionEventRebalance:
			fmt.Printf("t=%d  best-response rebalancing          (+%.3f)\n", i+1, r.Gain)
		}
	}
	fmt.Printf("\nafter %d events: version %d, value %.2f\n", len(res.Results), res.Version, res.Value)

	// One drift-repair cycle: re-solve the session's current instance
	// through the engine and swap the solution in if it beats the
	// incrementally repaired configuration.
	mgr.RepairAll(ctx)
	final, err := mgr.Snapshot(snap.ID)
	if err != nil {
		log.Fatal(err)
	}
	verdict := "kept the incremental configuration"
	if final.Metrics.RepairSwaps > 0 {
		verdict = "swapped in the full re-solve"
	}
	fmt.Printf("drift repair: %s                 value %.2f (version %d)\n", verdict, final.Value, final.Version)
	fmt.Printf("\nActive shoppers: %v\n", final.Active)
	fmt.Printf("Session metrics: %d events (%d joins, %d leaves, %d updates, %d rebalances), rebalance gain %.3f\n",
		final.Metrics.EventsApplied, final.Metrics.Joins, final.Metrics.Leaves,
		final.Metrics.Updates, final.Metrics.Rebalances, final.Metrics.RebalanceGain)
}
