// VR store session: a realistic social-aware shopping scenario on the
// Timik-like synthetic dataset, exercising the wider API surface — dataset
// generation, the full solver lineup, subgroup analytics, commodity-weighted
// profit optimization (Extension A), layout slot significance (Extension B)
// and multi-view display (Extension C).
//
//	go run ./examples/vrstore
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	svgic "github.com/svgic/svgic"
)

func main() {
	const (
		n      = 40  // shoppers in the store
		m      = 200 // catalogue size
		k      = 8   // display slots on the shelf
		lambda = 0.5
	)
	in, err := svgic.GenerateDataset(svgic.Timik, n, m, k, lambda, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Social VR store: %d shoppers, %d items, %d slots ===\n\n", n, m, k)

	// The full lineup, resolved from the solver registry by name — the same
	// names svgicd's "algo" request field and the svgic CLI accept. r = 1 is
	// the empirically near-optimal balancing ratio (paper §6.7); the default
	// r = 1/4 carries the worst-case proof but leans towards one big group.
	ctx := context.Background()
	var solvers []svgic.Solver
	for _, pick := range []struct {
		algo   string
		params svgic.Params
	}{
		{"avgd", svgic.Params{"r": 1.0}},
		{"avg", svgic.Params{"seed": 7}},
		{"per", nil},
		{"fmg", nil},
		{"sdp", svgic.Params{"seed": 7}},
		{"grf", nil},
	} {
		s, err := svgic.NewSolver(pick.algo, pick.params)
		if err != nil {
			log.Fatal(err)
		}
		solvers = append(solvers, s)
	}
	fmt.Printf("%-6s  %9s  %9s  %9s  %10s  %7s\n",
		"scheme", "total", "pref", "social", "codisplay%", "alone%")
	var avgdConf *svgic.Configuration
	for _, s := range solvers {
		sol, err := s.Solve(ctx, in)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		rep := sol.Report
		met := svgic.ComputeSubgroupMetrics(in, sol.Config)
		fmt.Printf("%-6s  %9.2f  %9.2f  %9.2f  %9.1f%%  %6.1f%%\n",
			sol.Algorithm, rep.Scaled(), rep.Preference, rep.Social,
			100*met.CoDisplayPct, 100*met.AlonePct)
		if sol.Algorithm == "AVG-D" {
			avgdConf = sol.Config
		}
	}

	// Extension A: maximize expected profit with commodity values. Prices
	// follow a simple spread; the solver runs unchanged on the weighted
	// instance.
	prices := make([]float64, m)
	for c := range prices {
		prices[c] = 0.5 + 1.5*math.Abs(math.Sin(float64(c)*0.73))
	}
	weighted := svgic.WeightedInstance(in, prices)
	profSol, err := svgic.AVGD(svgic.AVGDOptions{R: 1}).Solve(ctx, weighted)
	if err != nil {
		log.Fatal(err)
	}
	profit := profSol.Report
	baseline := svgic.Evaluate(weighted, avgdConf)
	fmt.Printf("\nExtension A (commodity values): profit-weighted objective %.2f vs %.2f when optimizing utility only (+%.1f%%)\n",
		profit.Scaled(), baseline.Scaled(), 100*(profit.Scaled()/baseline.Scaled()-1))

	// Extension B: center slots matter more; a free global slot permutation
	// maximizes the γ-weighted objective.
	gamma := make([]float64, k)
	for s := range gamma {
		center := float64(k-1) / 2
		gamma[s] = 1 + 2*(1-math.Abs(float64(s)-center)/center)
	}
	before := svgic.EvaluateWithSlotWeights(in, avgdConf, gamma)
	reordered := svgic.OptimizeSlotOrder(in, avgdConf, gamma)
	after := svgic.EvaluateWithSlotWeights(in, reordered, gamma)
	fmt.Printf("Extension B (slot significance): γ-weighted objective %.2f -> %.2f after slot reordering (utility unchanged: %.2f)\n",
		before, after, svgic.Evaluate(in, reordered).Scaled())

	// Extension C: multi-view display lets a user flip to friends' views.
	mv := svgic.GreedyMVD(in, avgdConf, 3)
	mvRep := svgic.EvaluateMVD(in, mv)
	fmt.Printf("Extension C (multi-view, β=3): objective %.2f vs single-view %.2f\n",
		mvRep.Scaled(), svgic.Evaluate(in, avgdConf).Scaled())

	// Extension E: smooth subgroup churn across consecutive slots for free.
	stable, dist := svgic.StabilizeSubgroups(in, avgdConf)
	fmt.Printf("Extension E (subgroup smoothing): edit distance %d -> %d (utility unchanged: %.2f)\n",
		svgic.SubgroupEditDistance(in, avgdConf), dist, svgic.Evaluate(in, stable).Scaled())

	// A shopper's-eye view: what does user 0 see, and with whom?
	fmt.Println("\nShopper 0's shelf:")
	for s := 0; s < k; s++ {
		item := avgdConf.Item(0, s)
		group := avgdConf.SubgroupsAt(s)[item]
		friends := 0
		for _, u := range group {
			if u != 0 && in.G.Connected(0, u) {
				friends++
			}
		}
		fmt.Printf("  slot %d: item %3d  (shared with %d shoppers, %d friends)\n",
			s+1, item, len(group)-1, friends)
	}
}
