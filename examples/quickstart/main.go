// Quickstart: the paper's running example (Figure 1 / Table 1) end to end.
//
// Alice, Bob, Charlie and Dave browse a VR store of digital-photography gear
// with three display slots. We build the instance, run the deterministic
// AVG-D solver and the randomized AVG solver, compare them against the
// personalized/group baselines, and print who is co-displayed what where.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	svgic "github.com/svgic/svgic"
)

var (
	users = []string{"Alice", "Bob", "Charlie", "Dave"}
	items = []string{"Tripod", "DSLR Camera", "PSD", "Memory Card", "SP Camera"}
)

func buildInstance() *svgic.Instance {
	g := svgic.NewGraph(len(users))
	// Directed friendships (u receives social utility from v).
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 2}, {2, 0}, {2, 1}, {3, 0}} {
		g.AddEdge(e[0], e[1])
	}
	in := svgic.NewInstance(g, len(items), 3 /* slots */, 0.5 /* λ */)

	// Preference utilities p(u, c) — Table 1 of the paper.
	pref := [][]float64{
		{0.8, 0.85, 0.1, 0.05, 1.0},
		{0.7, 1.0, 0.15, 0.2, 0.1},
		{0, 0.15, 0.7, 0.6, 0.1},
		{0.1, 0, 0.3, 1.0, 0.95},
	}
	for u, row := range pref {
		for c, p := range row {
			in.SetPref(u, c, p)
		}
	}
	// Social utilities τ(u, v, c) — what u gains from discussing c with v.
	tau := map[[2]int][]float64{
		{0, 1}: {0.2, 0.05, 0.1, 0, 0.05},
		{0, 2}: {0, 0.05, 0.1, 0, 0.3},
		{0, 3}: {0.2, 0.05, 0.1, 0.05, 0.2},
		{1, 0}: {0.2, 0.05, 0.1, 0.05, 0.05},
		{1, 2}: {0, 0.05, 0.1, 0.2, 0},
		{2, 0}: {0, 0.05, 0.1, 0.05, 0.3},
		{2, 1}: {0.1, 0.05, 0.1, 0.2, 0.05},
		{3, 0}: {0.3, 0.05, 0.05, 0, 0.25},
	}
	for e, row := range tau {
		for c, t := range row {
			if err := in.SetTau(e[0], e[1], c, t); err != nil {
				log.Fatal(err)
			}
		}
	}
	return in
}

func main() {
	in := buildInstance()

	fmt.Println("=== SVGIC quickstart: the paper's running example ===")
	fmt.Println()

	// Every algorithm implements svgic.Solver, so comparison is uniform —
	// here via the typed constructors; svgic.NewSolver(name, params) resolves
	// the same solvers from the registry by name.
	ctx := context.Background()
	solvers := []svgic.Solver{
		svgic.AVGD(svgic.AVGDOptions{}),
		svgic.AVG(svgic.AVGOptions{Seed: 42, Repeats: 5}),
		svgic.Personalized(),
		svgic.Group(0),
		svgic.SubgroupByFriendship(2, 1),
		svgic.SubgroupByPreference(2),
	}
	var best *svgic.Configuration
	bestVal := -1.0
	for _, s := range solvers {
		sol, err := s.Solve(ctx, in)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		rep := sol.Report
		fmt.Printf("%-6s total SAVG utility %.2f (preference %.2f + social %.2f)\n",
			sol.Algorithm, rep.Scaled(), rep.Preference, rep.Social)
		if rep.Scaled() > bestVal {
			bestVal, best = rep.Scaled(), sol.Config
		}
	}

	fmt.Println()
	fmt.Println("Best configuration, per user:")
	for u, name := range users {
		fmt.Printf("  %-8s", name)
		for s := 0; s < 3; s++ {
			fmt.Printf("  slot%d: %-12s", s+1, items[best.Item(u, s)])
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Co-display subgroups (who can discuss what, where):")
	for s := 0; s < 3; s++ {
		for item, members := range best.SubgroupsAt(s) {
			if len(members) < 2 {
				continue
			}
			names := make([]string, len(members))
			for i, u := range members {
				names[i] = users[u]
			}
			fmt.Printf("  slot %d: %v share the %s\n", s+1, names, items[item])
		}
	}

	fmt.Println()
	fmt.Println("Per-user regret ratios (lower is fairer):")
	for u, r := range svgic.RegretRatios(in, best) {
		fmt.Printf("  %-8s %.1f%%\n", users[u], 100*r)
	}
}
