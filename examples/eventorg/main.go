// Social Event Organization (SEO) via SVGIC-ST, the application the paper
// identifies in Section 4.4: attendees of an event-based social network are
// assigned to a series of capacity-constrained social events so that
// attending with friends is maximized without drowning individual taste.
//
// The seo package maps events to items, consecutive time periods to display
// slots and venue capacity to the subgroup size constraint M; the capped CSF
// of AVG guarantees a feasible schedule.
//
//	go run ./examples/eventorg
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	svgic "github.com/svgic/svgic"
	"github.com/svgic/svgic/seo"
)

func main() {
	events := []seo.Event{
		{Name: "escape room", Capacity: 6},
		{Name: "city hike", Capacity: 8},
		{Name: "jazz concert", Capacity: 6},
		{Name: "board games", Capacity: 6},
		{Name: "food market", Capacity: 8},
		{Name: "museum tour", Capacity: 6},
		{Name: "climbing gym", Capacity: 6},
		{Name: "wine tasting", Capacity: 6},
	}
	const (
		periods   = 3
		attendees = 24
		lambda    = 0.6
	)
	org, err := seo.NewOrganizer(events, periods, lambda)
	if err != nil {
		log.Fatal(err)
	}
	// Attendees arrive in friend circles of 4 with correlated tastes.
	r := rand.New(rand.NewPCG(11, 13))
	for circle := 0; circle < attendees/4; circle++ {
		base := make([]float64, len(events))
		for e := range base {
			base[e] = r.Float64()
		}
		var ids []int
		for member := 0; member < 4; member++ {
			prefs := make([]float64, len(events))
			for e := range prefs {
				prefs[e] = clamp(0.7*base[e] + 0.3*r.Float64())
			}
			id, err := org.AddAttendee(fmt.Sprintf("c%d-m%d", circle, member), prefs)
			if err != nil {
				log.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if err := org.AddFriendship(ids[i], ids[j], 0.35, 0.35); err != nil {
					log.Fatal(err)
				}
			}
		}
		// A few cross-circle acquaintances keep the network connected.
		if circle > 0 {
			if err := org.AddFriendship(ids[0], ids[0]-4, 0.15, 0.15); err != nil {
				log.Fatal(err)
			}
		}
	}

	schedule, err := org.Solve(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Event plan: %d attendees, %d events, %d periods ===\n\n", attendees, len(events), periods)
	fmt.Printf("objective %.2f, capacity violations %d\n\n", schedule.Objective, schedule.Violations)

	for p := 0; p < periods; p++ {
		fmt.Printf("period %d:\n", p+1)
		for e, ev := range events {
			roster := schedule.Roster(p, e)
			if len(roster) == 0 {
				continue
			}
			fmt.Printf("  %-13s %d/%d seats: %v\n", ev.Name, len(roster), ev.Capacity, roster)
		}
	}

	fmt.Println("\nAttendee c0-m0's plan:", schedule.AttendeePlan(0))

	reg := schedule.Regret()
	worst, mean := 0.0, 0.0
	for _, x := range reg {
		mean += x
		if x > worst {
			worst = x
		}
	}
	fmt.Printf("regret: mean %.1f%%, worst attendee %.1f%%\n", 100*mean/float64(len(reg)), 100*worst)

	// The same plan through the generic API, for comparison: a capacity-
	// oblivious personalized plan violates venue limits.
	in, _ := svgic.GenerateDataset(svgic.Yelp, attendees, len(events), periods, lambda, 3)
	perSol, _ := svgic.Personalized().Solve(context.Background(), in)
	per := perSol.Config
	fmt.Printf("\n(for contrast, a personalized plan on a comparable instance has %d violations at capacity 6)\n",
		per.SizeViolations(6))
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
