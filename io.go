package svgic

import (
	"io"

	"github.com/svgic/svgic/internal/core"
)

// JSON interchange: instances and configurations round-trip through a stable
// schema shared with the svgic CLI and the datagen tool. See
// internal/core/encoding.go for the exact format.

// InstanceJSON is the interchange form of an Instance.
type InstanceJSON = core.InstanceJSON

// EdgeJSON is one directed edge with optional per-item social utilities.
type EdgeJSON = core.EdgeJSON

// MarshalInstance encodes an instance as indented JSON.
func MarshalInstance(in *Instance) ([]byte, error) { return core.MarshalInstance(in) }

// UnmarshalInstance decodes and validates an instance from JSON, tolerating
// unknown fields. Untrusted input should go through UnmarshalInstanceStrict.
func UnmarshalInstance(data []byte) (*Instance, error) { return core.UnmarshalInstance(data) }

// UnmarshalInstanceStrict decodes and validates an instance from JSON,
// rejecting unknown fields and trailing content — a misspelled field (e.g.
// "preference" for "preferences") fails loudly instead of silently handing
// the solver a zero-utility instance. The svgic CLI and the svgicd server
// ingest through this path.
func UnmarshalInstanceStrict(data []byte) (*Instance, error) {
	return core.UnmarshalInstanceStrict(data)
}

// InstanceFromJSON builds a validated instance from the interchange struct,
// for callers that decode the JSON envelope themselves (the CLI wraps
// InstanceJSON with solve parameters; the server decodes batches).
func InstanceFromJSON(ij *InstanceJSON) (*Instance, error) { return core.InstanceFromJSON(ij) }

// DecodeStrict decodes exactly one JSON document into v with unknown fields
// disallowed and trailing content rejected — the decoding discipline of every
// user-facing ingestion path.
func DecodeStrict(r io.Reader, v any) error { return core.DecodeStrict(r, v) }

// MarshalConfiguration encodes a configuration as indented JSON.
func MarshalConfiguration(conf *Configuration) ([]byte, error) {
	return core.MarshalConfiguration(conf)
}

// UnmarshalConfiguration decodes a configuration from JSON (validate against
// an instance with Configuration.Validate).
func UnmarshalConfiguration(data []byte) (*Configuration, error) {
	return core.UnmarshalConfiguration(data)
}

// LocalSearch improves a configuration in place by exact per-user best
// responses until a fixed point (or maxPasses sweeps), honouring the
// SVGIC-ST size cap when cap > 0. It returns the objective improvement.
func LocalSearch(in *Instance, conf *Configuration, maxPasses, cap int) float64 {
	return core.LocalSearch(in, conf, maxPasses, cap)
}

// AlignSlots permutes each user's items among their own slots to convert
// teleport-discounted indirect co-display into full direct co-display
// (SVGIC-ST semantics with discount dtel), never decreasing the objective
// and honouring the size cap when cap > 0. It returns the improvement in
// the EvaluateST objective.
func AlignSlots(in *Instance, conf *Configuration, dtel float64, maxPasses, cap int) float64 {
	return core.AlignSlots(in, conf, dtel, maxPasses, cap)
}
