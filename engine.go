package svgic

import (
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/engine"
)

// Engine is the concurrent batch solver: a fixed worker pool that splits each
// instance into the connected components of its social network (when the
// solver declares decomposition safe), solves the components in parallel
// (the SAVG objective couples users only across social edges, so the merge
// is objective-preserving), and memoizes whole-instance Solutions behind an
// LRU cache keyed by (instance fingerprint, solver identity) — so two
// algorithms, or one algorithm under two parameterizations, never alias.
//
//	eng := svgic.NewEngine(svgic.EngineOptions{Workers: 8})
//	defer eng.Close()
//	sol, err := eng.Solve(ctx, in)             // one group, default solver
//	conf := sol.Config                         // rich Solution envelope
//	sol, err = eng.SolveWith(ctx, in, s)       // any registered solver
//	sols, err := eng.SolveBatch(ctx, batch)    // many groups, shared pool
//	fmt.Println(eng.Stats())                   // global + per-algorithm counters
//
// Per-request solvers are typically registry-built (NewSolver); a solver
// without a parameter-precise cache identity (core.CacheKeyer) bypasses the
// result cache and request coalescing rather than risk aliasing. With the
// default deterministic AVG-D solver the engine returns exactly the
// configuration a direct AVG-D solve returns — decomposition and concurrency
// change the wall time, never the answer.
type Engine = engine.Engine

// EngineOptions configures NewEngine: worker count, per-worker solver
// factory, result-cache size and the decomposition switch.
type EngineOptions = engine.Options

// EngineStats is a snapshot of an Engine's throughput, latency and cache
// counters.
type EngineStats = engine.Stats

// ErrEngineClosed is returned by Engine calls after Close.
var ErrEngineClosed = engine.ErrClosed

// DefaultEngineCacheSize is the result-cache capacity used when
// EngineOptions.CacheSize is zero.
const DefaultEngineCacheSize = engine.DefaultCacheSize

// NewEngine starts an engine with its worker pool running. Release it with
// Close.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// FingerprintInstance returns the 64-bit FNV-1a hash of everything that
// determines a solver's output on the instance (users, items, k, λ,
// preferences, edges and τ). The engine's cache keys on it; it is exported
// for callers building their own memoization or request-coalescing layers.
func FingerprintInstance(in *Instance) uint64 { return core.Fingerprint(in) }

// DecomposeInstance splits an instance into the sub-instances induced by the
// connected components of its social network, together with the original
// user ids of each part (MergeInstanceConfigurations consumes the same
// mapping). Connected instances come back as a one-element identity split.
func DecomposeInstance(in *Instance) ([]*Instance, [][]int) {
	return core.ComponentDecompose(in)
}

// MergeInstanceConfigurations embeds per-part configurations back into a full
// n-user configuration; origs maps each part's rows to original user ids, as
// returned by DecomposeInstance.
func MergeInstanceConfigurations(n, k int, parts []*Configuration, origs [][]int) *Configuration {
	return core.MergeConfigurations(n, k, parts, origs)
}
