# Local targets mirroring .github/workflows/ci.yml, so a green `make check`
# predicts a green CI run.

GO ?= go

.PHONY: build test test-short bench fmt fmt-check vet lint check serve-smoke

build:
	$(GO) build ./...

# Full suite — the non-short CI lane (includes the ~7s experiment sweep).
test:
	$(GO) test ./...

# Fast racy lane — what the CI `check` job runs.
test-short:
	$(GO) test -race -short ./...

# Benchmark smoke: one iteration of every benchmark, no tests.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis — the CI lint lane. Deliberate uses of deprecated wrappers
# carry //lint:ignore SA1019 directives at the call site (never blanket
# -checks ignores), so staticcheck stays fully enabled. Skips with a notice
# when the binary is not installed locally.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it; locally:"; \
		echo "      go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Serving smoke: build svgicd and fire a few hundred mixed-duplicate requests
# at an in-process server. The loadgen exits non-zero on any response status
# other than 200/429, and its stats line shows the cache + coalesce hit rates.
serve-smoke:
	$(GO) build -o bin/svgicd ./cmd/svgicd
	./bin/svgicd -loadgen -requests 300 -dup-frac 0.5 -conc 8 -workers 2 -max-inflight 16

check: fmt-check vet lint build test-short
