# Local targets mirroring .github/workflows/ci.yml, so a green `make check`
# predicts a green CI run.

GO ?= go

.PHONY: build test test-short bench bench-sessions bench-dynamic fmt fmt-check vet lint lint-internal lint-fixtures check serve-smoke session-smoke crash-smoke slo-smoke

build:
	$(GO) build ./...

# Full suite — the non-short CI lane (includes the ~7s experiment sweep).
test:
	$(GO) test ./...

# Fast racy lane — what the CI `check` job runs.
test-short:
	$(GO) test -race -short ./...

# Benchmark smoke: one iteration of every benchmark, no tests.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Sharded-session contention benchmark: single-lock (shards=1) vs sharded
# manager throughput at 1/2/4/8 concurrent workers, written to
# BENCH_sessions.json — the repo's tracked perf-trajectory artifact. 500ms
# per sub-benchmark keeps the shard-count trend above run-to-run noise.
bench-sessions:
	$(GO) test ./internal/session -run='^$$' -bench='BenchmarkManagerSharded' -benchtime=500ms \
		| $(GO) run ./cmd/benchjson -o BENCH_sessions.json

# Dynamic hot-path benchmarks, written to BENCH_dynamic.json: per-event cost
# of the incremental value accumulator vs a full Evaluate rescan at 1k/10k
# users (core), and one drift-repair cycle with dirty-component delta solving
# + warm starts vs a cold whole-instance re-solve (session). Two packages'
# tables feed one artifact; benchjson attributes each result to its package.
bench-dynamic:
	( $(GO) test ./internal/core -run='^$$' -bench='BenchmarkDynamicEvent' -benchtime=500ms ; \
	  $(GO) test ./internal/session -run='^$$' -bench='BenchmarkRepairCycle' -benchtime=500ms ) \
		| $(GO) run ./cmd/benchjson -o BENCH_dynamic.json

# -s (simplify) included: composite-literal and range simplifications are
# enforced, not just layout.
fmt:
	gofmt -s -w .

fmt-check:
	@out=$$(gofmt -s -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt -s:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis — the CI lint lane: staticcheck (generic checks) plus the
# project's own analyzer suite (lint-internal). Deliberate suppressions carry
# //lint:ignore directives with a justification at the call site (never
# blanket -checks ignores), so both tools stay fully enabled. staticcheck
# skips with a notice when the binary is not installed locally; the version
# is pinned so a new upstream release cannot break every open PR overnight.
lint: lint-internal
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it; locally:"; \
		echo "      go install honnef.co/go/tools/cmd/staticcheck@2025.1)"; \
	fi

# Project invariants — svgiclint (see docs/STATIC_ANALYSIS.md): solve outside
# session/shard locks, Clone before storing cloneable inputs, ctx threaded
# through serving paths, seeded randomness, no new deprecated-API call sites,
# no lock-order cycles, no untracked goroutines in serving packages.
# Driven through `go vet -vettool` so test compilation units (where the
# sanctioned deprecated-wrapper sites live) are analyzed too. Zero deps:
# the driver builds from this module alone. The binary rebuilds only when an
# analyzer source file (fixtures excluded) or go.mod changes.
ANALYSIS_SRCS := $(shell find internal/analysis cmd/svgiclint -name '*.go' -not -path '*/testdata/*')

bin/svgiclint: $(ANALYSIS_SRCS) go.mod
	$(GO) build -o bin/svgiclint ./cmd/svgiclint

lint-internal: bin/svgiclint
	$(GO) vet -vettool=$$(pwd)/bin/svgiclint ./...

# Analyzer self-tests: every checker against its own deadlock/leak fixtures,
# plus the flow-engine and harness unit tests, under the race detector.
lint-fixtures:
	$(GO) test -race ./internal/analysis/...

# Serving smoke: build svgicd and fire a few hundred mixed-duplicate requests
# at an in-process server. The loadgen exits non-zero on any response status
# other than 200/429, and its stats line shows the cache + coalesce hit rates.
serve-smoke:
	$(GO) build -o bin/svgicd ./cmd/svgicd
	./bin/svgicd -loadgen -requests 300 -dup-frac 0.5 -conc 8 -workers 2 -max-inflight 16

# Live-session smoke: datagen records a join/leave/update event trace, the
# dynamic loadgen boots an in-process svgicd (drift repair on a hot 50ms
# loop) and replays the trace into two sessions plus a generated-churn run.
# The loadgen fails on any non-2xx/non-429 status or a non-monotone session
# version. Both the trace (-seed/-event-seed) and the churn run (-seed) are
# explicitly seeded, so two CI runs replay byte-identical workloads.
session-smoke:
	$(GO) build -o bin/svgicd ./cmd/svgicd
	$(GO) build -o bin/datagen ./cmd/datagen
	./bin/datagen -dataset timik -n 12 -m 30 -k 3 -seed 5 -event-seed 6 -events 40 -o bin/session-trace.json
	./bin/svgicd -loadgen -dynamic -trace bin/session-trace.json -sessions 2 -workers 2 -repair-interval 50ms
	./bin/svgicd -loadgen -dynamic -sessions 4 -requests 200 -workers 2 -repair-interval 50ms -seed 9

# SLO smoke: the adaptive-admission acceptance test against real load. An
# in-process svgicd serves an unattainable objective (p99 solve < 1ms) while
# the loadgen storms it with the expensive exact solver; the SLO controller
# must observe the burn and reroute ip requests to avgd ("degraded":true),
# and -assert-slo-degrade fails the run unless /v1/stats shows degraded
# requests AND a bounded number of ladder transitions (degrading without
# flapping). Asserted via counters, not timing, so the lane is loadable on
# slow CI runners.
slo-smoke:
	$(GO) build -o bin/svgicd ./cmd/svgicd
	./bin/svgicd -loadgen -algo ip -requests 400 -conc 16 -dup-frac 0.2 -workers 2 \
		-slo "p99 solve < 1ms over 2s" -assert-slo-degrade

# Crash smoke: the durability acceptance test against a REAL process. The
# loadgen spawns a child svgicd serving on a data directory, streams
# live-session churn, SIGKILLs the child mid-stream, restarts it on the same
# directory and asserts every recovered session serves exactly what an
# offline replay of its acknowledged event prefix produces — once under
# per-event fsync, once with fsync off (prefix consistency must hold under
# both; a hot 16-event snapshot cadence keeps compaction in the picture).
# -session-shards 4 makes the restarted child restore every session into a
# hash-routed shard, so recovery-into-the-owning-shard is exercised end to
# end under both fsync policies.
crash-smoke:
	$(GO) build -o bin/svgicd ./cmd/svgicd
	rm -rf bin/crash-data-always bin/crash-data-off
	./bin/svgicd -loadgen -dynamic -crash -data-dir bin/crash-data-always -fsync always -snapshot-every 16 -sessions 4 -session-shards 4 -requests 240 -workers 2 -seed 11
	./bin/svgicd -loadgen -dynamic -crash -data-dir bin/crash-data-off -fsync off -snapshot-every 16 -sessions 4 -session-shards 4 -requests 240 -workers 2 -seed 12

check: fmt-check vet lint build test-short
