package svgic_test

import (
	"context"
	"math"
	"testing"

	svgic "github.com/svgic/svgic"
)

// buildExample constructs the paper's running example through the public API.
func buildExample(t *testing.T, lambda float64) *svgic.Instance {
	t.Helper()
	g := svgic.NewGraph(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 2}, {2, 0}, {2, 1}, {3, 0}} {
		g.AddEdge(e[0], e[1])
	}
	in := svgic.NewInstance(g, 5, 3, lambda)
	pref := [][]float64{
		{0.8, 0.85, 0.1, 0.05, 1.0},
		{0.7, 1.0, 0.15, 0.2, 0.1},
		{0, 0.15, 0.7, 0.6, 0.1},
		{0.1, 0, 0.3, 1.0, 0.95},
	}
	for u, row := range pref {
		for c, p := range row {
			in.SetPref(u, c, p)
		}
	}
	tau := map[[2]int][]float64{
		{0, 1}: {0.2, 0.05, 0.1, 0, 0.05},
		{0, 2}: {0, 0.05, 0.1, 0, 0.3},
		{0, 3}: {0.2, 0.05, 0.1, 0.05, 0.2},
		{1, 0}: {0.2, 0.05, 0.1, 0.05, 0.05},
		{1, 2}: {0, 0.05, 0.1, 0.2, 0},
		{2, 0}: {0, 0.05, 0.1, 0.05, 0.3},
		{2, 1}: {0.1, 0.05, 0.1, 0.2, 0.05},
		{3, 0}: {0.3, 0.05, 0.05, 0, 0.25},
	}
	for e, row := range tau {
		for c, v := range row {
			if err := in.SetTau(e[0], e[1], c, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return in
}

func TestPublicAPISolvers(t *testing.T) {
	in := buildExample(t, 0.5)
	solvers := []svgic.Solver{
		svgic.AVG(svgic.AVGOptions{Seed: 1, Repeats: 3}),
		svgic.AVGD(svgic.AVGDOptions{}),
		svgic.AVGD(svgic.AVGDOptions{R: 1}),
		svgic.Personalized(),
		svgic.Group(0),
		svgic.SubgroupByFriendship(2, 1),
		svgic.SubgroupByPreference(2),
		svgic.ExactIP(0),
	}
	values := map[string]float64{}
	for _, s := range solvers {
		sol, err := s.Solve(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		values[s.Name()] = sol.Report.Scaled()
	}
	if math.Abs(values["IP"]-10.35) > 1e-6 {
		t.Errorf("exact IP = %.4f, want 10.35", values["IP"])
	}
	if math.Abs(values["PER"]-8.25) > 1e-9 || math.Abs(values["FMG"]-8.35) > 1e-9 {
		t.Errorf("baseline values: PER %v FMG %v", values["PER"], values["FMG"])
	}
	if values["AVG"] < 8.7 || values["AVG-D"] < 8.7 {
		t.Errorf("approximation algorithms below the best baseline: %v", values)
	}
}

func TestPublicAPIEvaluateAndMetrics(t *testing.T) {
	in := buildExample(t, 0.4)
	conf := svgic.NewConfiguration(4, 3)
	rows := [][]int{{4, 0, 1}, {1, 0, 3}, {4, 2, 3}, {4, 0, 3}}
	for u, row := range rows {
		copy(conf.Assign[u], row)
	}
	rep := svgic.Evaluate(in, conf)
	if math.Abs(rep.Preference-8.0) > 1e-9 {
		t.Errorf("preference = %v", rep.Preference)
	}
	if got := svgic.UserUtility(in, conf, 0); math.Abs(got-1.95) > 1e-9 {
		t.Errorf("UserUtility(Alice) = %v, want 1.95", got)
	}
	m := svgic.ComputeSubgroupMetrics(in, conf)
	if m.CoDisplayPct <= 0 || m.AlonePct < 0 {
		t.Errorf("metrics = %+v", m)
	}
	reg := svgic.RegretRatios(in, conf)
	if len(reg) != 4 {
		t.Fatalf("regret length = %d", len(reg))
	}
	if d := svgic.SubgroupEditDistance(in, conf); d < 0 {
		t.Errorf("edit distance = %d", d)
	}
}

func TestPublicAPIST(t *testing.T) {
	in, err := svgic.GenerateDataset(svgic.Epinions, 12, 20, 3, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The deprecated one-shot wrapper must keep delegating to the same path
	// as the Solver API (compat contract of the v2 redesign).
	//lint:ignore SA1019 the deprecated wrapper is exercised deliberately
	conf, st, err := svgic.SolveAVG(in, svgic.AVGOptions{Seed: 2, SizeCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := svgic.AVG(svgic.AVGOptions{Seed: 2, SizeCap: 3}).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for u := range conf.Assign {
		for k := range conf.Assign[u] {
			if conf.Assign[u][k] != wrapped.Config.Assign[u][k] {
				t.Fatalf("deprecated SolveAVG diverges from AVG().Solve at (%d,%d)", u, k)
			}
		}
	}
	if st.LPObjective <= 0 {
		t.Error("no LP objective reported")
	}
	if v := conf.SizeViolations(3); v != 0 {
		t.Errorf("size violations = %d", v)
	}
	rep := svgic.EvaluateST(in, conf, 0.5)
	if rep.Weighted() < svgic.Evaluate(in, conf).Weighted()-1e-9 {
		t.Error("teleportation discount lowered the objective below plain SVGIC")
	}
	pp := svgic.Prepartitioned(svgic.Group(1), 3, 1)
	if pp.Name() != "FMG-P" {
		t.Errorf("prepartitioned name = %q", pp.Name())
	}
	if _, err := pp.Solve(context.Background(), in); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIRegistry covers the package-level solver registry: discovery,
// construction with validated parameters, and extension via RegisterSolver.
func TestPublicAPIRegistry(t *testing.T) {
	names := svgic.SolverNames()
	for _, want := range []string{"avg", "avgd", "per", "fmg", "sdp", "grf", "ip"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in solver %q missing from SolverNames() = %v", want, names)
		}
	}
	if len(svgic.Solvers()) != len(names) {
		t.Errorf("Solvers() and SolverNames() disagree: %d vs %d", len(svgic.Solvers()), len(names))
	}
	if _, ok := svgic.LookupSolver("avgd"); !ok {
		t.Fatal("LookupSolver(avgd) failed")
	}

	in := buildExample(t, 0.5)
	s, err := svgic.NewSolver("avgd", svgic.Params{"r": 1.0})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Algorithm != "AVG-D" || sol.Config == nil || sol.Rounding == nil {
		t.Errorf("registry AVG-D solution incomplete: %+v", sol)
	}
	if _, err := svgic.NewSolver("avgd", svgic.Params{"bogus": 1}); err == nil {
		t.Error("unknown parameter accepted")
	}
	if _, err := svgic.NewSolver("nope", nil); err == nil {
		t.Error("unknown solver accepted")
	}

	// A custom registration is immediately constructible by name.
	if err := svgic.RegisterSolver(svgic.SolverSpec{
		Name:        "always-per",
		Display:     "ALWAYS-PER",
		Description: "test-only alias of the personalized baseline",
		New: func(p svgic.SolverParams) (svgic.Solver, error) {
			return svgic.Personalized(), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	custom, err := svgic.NewSolver("always-per", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := custom.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != "ALWAYS-PER" {
		t.Errorf("custom solver algorithm = %q", got.Algorithm)
	}
	if err := svgic.RegisterSolver(svgic.SolverSpec{Name: "always-per", New: func(svgic.SolverParams) (svgic.Solver, error) { return svgic.Personalized(), nil }}); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestPublicAPIDatasetsAndExtensions(t *testing.T) {
	for _, name := range []svgic.DatasetName{svgic.Timik, svgic.Epinions, svgic.Yelp} {
		in, err := svgic.GenerateDataset(name, 10, 15, 3, 0.5, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sol, err := svgic.AVGD(svgic.AVGDOptions{R: 1}).Solve(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		conf := sol.Config
		// Extensions through the public surface.
		w := make([]float64, in.NumItems)
		gamma := make([]float64, in.K)
		for i := range w {
			w[i] = 1 + float64(i%3)
		}
		for i := range gamma {
			gamma[i] = float64(in.K - i)
		}
		wi := svgic.WeightedInstance(in, w)
		if _, err := svgic.AVGD(svgic.AVGDOptions{}).Solve(context.Background(), wi); err != nil {
			t.Fatal(err)
		}
		re := svgic.OptimizeSlotOrder(in, conf, gamma)
		if svgic.EvaluateWithSlotWeights(in, re, gamma) < svgic.EvaluateWithSlotWeights(in, conf, gamma)-1e-9 {
			t.Error("slot reordering decreased the γ-weighted objective")
		}
		mv := svgic.GreedyMVD(in, conf, 2)
		if svgic.EvaluateMVD(in, mv).Weighted() < svgic.Evaluate(in, conf).Weighted()-1e-9 {
			t.Error("MVD lost utility")
		}
		stable, _ := svgic.StabilizeSubgroups(in, conf)
		if err := stable.Validate(in); err != nil {
			t.Fatal(err)
		}
		ds, err := svgic.NewDynamicSession(in, conf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Rebalance(2) < 0 {
			t.Error("negative rebalance improvement")
		}
	}
}

func TestPublicAPIUtilityGenerator(t *testing.T) {
	g := svgic.NewGraph(6)
	for i := 0; i < 5; i++ {
		g.AddMutualEdge(i, i+1)
	}
	in := svgic.NewInstance(g, 12, 3, 0.5)
	svgic.PopulateUtilities(in, svgic.DefaultUtilityParams(), 4)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	var any bool
	for u := 0; u < 6; u++ {
		for c := 0; c < 12; c++ {
			if in.Pref[u][c] > 0 {
				any = true
			}
		}
	}
	if !any {
		t.Error("generator produced all-zero preferences")
	}
}
