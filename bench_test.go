package svgic_test

// One benchmark per table/figure of the paper's evaluation (Section 6),
// each regenerating the experiment through the harness in internal/eval,
// plus micro-benchmarks of the core algorithm phases. Run with
//
//	go test -bench=. -benchmem
//
// The Fig* benchmarks report ns/op for a full experiment regeneration;
// EXPERIMENTS.md records the produced tables and compares them to the paper.

import (
	"context"
	"fmt"
	"testing"

	svgic "github.com/svgic/svgic"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/eval"
)

// runExperiment benchmarks one registry entry. IP-bearing experiments run in
// Quick mode so a single iteration stays in seconds; the full-scale variants
// are produced by cmd/experiments.
func runExperiment(b *testing.B, id string, quick bool) {
	b.Helper()
	r, err := eval.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := eval.DefaultConfig()
	cfg.Quick = quick
	cfg.Samples = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		tabs, err := r.Fn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tabs) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkRunningExample(b *testing.B)     { runExperiment(b, "example", false) }
func BenchmarkFig3UtilityVsN(b *testing.B)     { runExperiment(b, "fig3n", true) }
func BenchmarkFig3UtilityVsM(b *testing.B)     { runExperiment(b, "fig3m", true) }
func BenchmarkFig3UtilityVsK(b *testing.B)     { runExperiment(b, "fig3k", false) }
func BenchmarkFig4Lambda(b *testing.B)         { runExperiment(b, "fig4", true) }
func BenchmarkFig5LargeN(b *testing.B)         { runExperiment(b, "fig5", true) }
func BenchmarkFig6Datasets(b *testing.B)       { runExperiment(b, "fig6", true) }
func BenchmarkFig7InputModels(b *testing.B)    { runExperiment(b, "fig7", true) }
func BenchmarkFig8Scalability(b *testing.B)    { runExperiment(b, "fig8", true) }
func BenchmarkFig9aMIPStrategies(b *testing.B) { runExperiment(b, "fig9a", true) }
func BenchmarkFig9bAblation(b *testing.B)      { runExperiment(b, "fig9b", true) }
func BenchmarkFig10SubgroupMetrics(b *testing.B) {
	runExperiment(b, "fig10", true)
}
func BenchmarkFig11CaseStudy(b *testing.B)    { runExperiment(b, "fig11", false) }
func BenchmarkFig12RSensitivity(b *testing.B) { runExperiment(b, "fig12", true) }
func BenchmarkFig13STViolations(b *testing.B) { runExperiment(b, "fig13", true) }
func BenchmarkFig14_15STUtility(b *testing.B) { runExperiment(b, "fig14", true) }
func BenchmarkFig16UserStudy(b *testing.B)    { runExperiment(b, "fig16", false) }
func BenchmarkTheorem1Gaps(b *testing.B)      { runExperiment(b, "theorem1", false) }
func BenchmarkLemma3IndependentRounding(b *testing.B) {
	runExperiment(b, "lemma3", false)
}

// --- Micro-benchmarks of the algorithm phases -----------------------------

func benchInstance(b *testing.B, n, m, k int) *svgic.Instance {
	b.Helper()
	in, err := svgic.GenerateDataset(svgic.Timik, n, m, k, 0.5, 7)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func BenchmarkAVGPipelineSmall(b *testing.B) {
	in := benchInstance(b, 16, 60, 4)
	b.ResetTimer()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := svgic.AVG(svgic.AVGOptions{Seed: uint64(i)}).Solve(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAVGPipelineMedium(b *testing.B) {
	in := benchInstance(b, 50, 300, 10)
	b.ResetTimer()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := svgic.AVG(svgic.AVGOptions{Seed: uint64(i)}).Solve(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAVGDPipelineSmall(b *testing.B) {
	in := benchInstance(b, 16, 60, 4)
	avgd := svgic.AVGD(svgic.AVGDOptions{R: 1})
	b.ResetTimer()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := avgd.Solve(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAVGDPipelineMedium(b *testing.B) {
	in := benchInstance(b, 50, 300, 10)
	avgd := svgic.AVGD(svgic.AVGDOptions{R: 1})
	b.ResetTimer()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := avgd.Solve(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	in := benchInstance(b, 50, 300, 10)
	sol, err := svgic.AVGD(svgic.AVGDOptions{R: 1}).Solve(context.Background(), in)
	if err != nil {
		b.Fatal(err)
	}
	conf := sol.Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := svgic.Evaluate(in, conf)
		if rep.Weighted() <= 0 {
			b.Fatal("zero objective")
		}
	}
}

func BenchmarkSubgroupMetrics(b *testing.B) {
	in := benchInstance(b, 50, 300, 10)
	sol, err := svgic.AVGD(svgic.AVGDOptions{R: 1}).Solve(context.Background(), in)
	if err != nil {
		b.Fatal(err)
	}
	conf := sol.Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := svgic.ComputeSubgroupMetrics(in, conf)
		if m.MeanSubgroupSize <= 0 {
			b.Fatal("degenerate metrics")
		}
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := svgic.GenerateDataset(svgic.Yelp, 50, 300, 10, 0.5, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Batch engine ---------------------------------------------------------

// engineBenchInstance folds `blocks` independent social groups of blockN
// users into one instance — the multi-component shape the engine decomposes.
func engineBenchInstance(seed uint64, blocks, blockN, m, k int) *svgic.Instance {
	return datasets.MultiGroup(seed, blocks, blockN, m, k, 0.5)
}

// BenchmarkEngineBatch measures batch throughput at increasing worker
// counts on multi-component instances (8 instances × 6 components each).
// The cache is disabled so every iteration pays full solve cost; ns/op is
// the wall time of one whole batch.
func BenchmarkEngineBatch(b *testing.B) {
	batch := make([]*svgic.Instance, 8)
	for i := range batch {
		batch[i] = engineBenchInstance(uint64(i+1), 6, 8, 40, 4)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := svgic.NewEngine(svgic.EngineOptions{Workers: w, CacheSize: -1})
			defer eng.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.SolveBatch(ctx, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineComponentScaling holds the total user count fixed and
// varies how it splits into components, isolating the decomposition win:
// per-component LP/rounding state is smaller, so more components means less
// work even before any parallelism.
func BenchmarkEngineComponentScaling(b *testing.B) {
	const users = 48
	for _, blocks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("components=%d", blocks), func(b *testing.B) {
			in := engineBenchInstance(7, blocks, users/blocks, 40, 4)
			eng := svgic.NewEngine(svgic.EngineOptions{Workers: 4, CacheSize: -1})
			defer eng.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Solve(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineCacheHit measures the memoized path: every solve after the
// first is answered from the fingerprint LRU.
func BenchmarkEngineCacheHit(b *testing.B) {
	in := engineBenchInstance(3, 6, 8, 40, 4)
	eng := svgic.NewEngine(svgic.EngineOptions{Workers: 2})
	defer eng.Close()
	ctx := context.Background()
	if _, err := eng.Solve(ctx, in); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Solve(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension & ablation experiments (Section 5 / Corollaries 4.1-4.2) ---

func BenchmarkExtMVDBeta(b *testing.B)          { runExperiment(b, "extmvd", false) }
func BenchmarkExtSlotSignificance(b *testing.B) { runExperiment(b, "extslots", false) }
func BenchmarkExtStability(b *testing.B)        { runExperiment(b, "extstability", false) }
func BenchmarkExtDynamic(b *testing.B)          { runExperiment(b, "extdynamic", false) }
func BenchmarkExtCommodity(b *testing.B)        { runExperiment(b, "extcommodity", false) }
func BenchmarkAblationRepeats(b *testing.B)     { runExperiment(b, "ablation-repeats", false) }
func BenchmarkAblationLPBudget(b *testing.B)    { runExperiment(b, "ablation-lp", false) }
