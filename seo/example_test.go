package seo_test

import (
	"fmt"

	"github.com/svgic/svgic/seo"
)

// ExampleOrganizer plans one evening for two friend pairs with one
// capacity-two venue per activity.
func ExampleOrganizer() {
	events := []seo.Event{
		{Name: "trivia", Capacity: 2},
		{Name: "karaoke", Capacity: 2},
		{Name: "cinema", Capacity: 2},
	}
	org, err := seo.NewOrganizer(events, 1, 0.7)
	if err != nil {
		panic(err)
	}
	// Ann & Ben love trivia together; Cam & Dee prefer karaoke.
	ann, _ := org.AddAttendee("Ann", []float64{0.9, 0.2, 0.4})
	ben, _ := org.AddAttendee("Ben", []float64{0.8, 0.3, 0.4})
	cam, _ := org.AddAttendee("Cam", []float64{0.2, 0.9, 0.4})
	dee, _ := org.AddAttendee("Dee", []float64{0.3, 0.8, 0.4})
	_ = org.AddFriendship(ann, ben, 0.6, 0.6)
	_ = org.AddFriendship(cam, dee, 0.6, 0.6)

	s, err := org.Solve(1)
	if err != nil {
		panic(err)
	}
	fmt.Println("violations:", s.Violations)
	fmt.Println("trivia:", s.Roster(0, 0))
	fmt.Println("karaoke:", s.Roster(0, 1))
	// Output:
	// violations: 0
	// trivia: [Ann Ben]
	// karaoke: [Cam Dee]
}
