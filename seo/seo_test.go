package seo

import (
	"testing"

	"github.com/svgic/svgic/internal/stats"
)

func organizerFixture(t *testing.T, capacity int) *Organizer {
	t.Helper()
	events := []Event{
		{Name: "board games", Capacity: capacity},
		{Name: "hike", Capacity: capacity},
		{Name: "concert", Capacity: capacity},
		{Name: "dinner", Capacity: capacity},
		{Name: "museum", Capacity: capacity},
	}
	o, err := NewOrganizer(events, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(5)
	for i := 0; i < 9; i++ {
		prefs := make([]float64, len(events))
		for e := range prefs {
			prefs[e] = r.Float64()
		}
		if _, err := o.AddAttendee(string(rune('A'+i)), prefs); err != nil {
			t.Fatal(err)
		}
	}
	// Three friendship triangles.
	for _, tri := range [][3]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}} {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if err := o.AddFriendship(tri[i], tri[j], 0.4, 0.4); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return o
}

func TestOrganizerSolveFeasible(t *testing.T) {
	o := organizerFixture(t, 3)
	s, err := o.Solve(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Violations != 0 {
		t.Errorf("capacity violations = %d", s.Violations)
	}
	if s.Objective <= 0 {
		t.Error("non-positive objective")
	}
	if len(s.PeriodEvents) != 2 || len(s.PeriodEvents[0]) != 9 {
		t.Fatalf("schedule shape: %v", s.PeriodEvents)
	}
	// No attendee repeats an event across periods.
	for u := 0; u < 9; u++ {
		if s.PeriodEvents[0][u] == s.PeriodEvents[1][u] {
			t.Errorf("attendee %d repeats event %d", u, s.PeriodEvents[0][u])
		}
	}
	// Plans and rosters are consistent.
	plan := s.AttendeePlan(0)
	if len(plan) != 2 {
		t.Fatalf("plan = %v", plan)
	}
	found := false
	for _, name := range s.Roster(0, s.PeriodEvents[0][0]) {
		if name == "A" {
			found = true
		}
	}
	if !found {
		t.Error("attendee A missing from their own event roster")
	}
	if reg := s.Regret(); len(reg) != 9 {
		t.Fatalf("regret length %d", len(reg))
	}
}

func TestOrganizerSocialPull(t *testing.T) {
	// Two friends with mild preference disagreement should end up together
	// at least once when social weight is high.
	events := []Event{{Name: "x"}, {Name: "y"}, {Name: "z"}}
	o, err := NewOrganizer(events, 1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddAttendee("a", []float64{1.0, 0.9, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddAttendee("b", []float64{0.9, 1.0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddFriendship(0, 1, 0.8, 0.8); err != nil {
		t.Fatal(err)
	}
	s, err := o.Solve(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.PeriodEvents[0][0] != s.PeriodEvents[0][1] {
		t.Errorf("friends were separated: %v", s.PeriodEvents)
	}
}

func TestOrganizerValidation(t *testing.T) {
	if _, err := NewOrganizer(nil, 1, 0.5); err == nil {
		t.Error("no events accepted")
	}
	if _, err := NewOrganizer([]Event{{Name: "x"}}, 2, 0.5); err == nil {
		t.Error("more periods than events accepted")
	}
	o, err := NewOrganizer([]Event{{Name: "x"}, {Name: "y"}}, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddAttendee("a", []float64{1}); err == nil {
		t.Error("wrong preference length accepted")
	}
	if _, err := o.Solve(1); err == nil {
		t.Error("empty organizer solved")
	}
	if _, err := o.AddAttendee("a", []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddAffinity(0, 9, 0, 0.5); err == nil {
		t.Error("out-of-range attendee accepted")
	}
	if err := o.AddAffinity(0, 0, 9, 0.5); err == nil {
		t.Error("out-of-range event accepted")
	}
}

func TestOrganizerCapacityInfeasible(t *testing.T) {
	events := []Event{{Name: "x", Capacity: 1}, {Name: "y", Capacity: 1}}
	o, err := NewOrganizer(events, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // 3 attendees, total capacity 2
		if _, err := o.AddAttendee("p", []float64{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := o.Solve(1); err == nil {
		t.Error("over-capacity problem solved")
	}
}
