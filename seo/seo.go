// Package seo organizes social events through SVGIC-ST. It maps Social
// Event Organization — the second application the
// paper identifies for SVGIC (§4.4) — onto SVGIC-ST. Attendees of an
// event-based social network are assigned one event per time period such
// that personal event preferences and the social utility of attending
// together are jointly maximized, subject to venue capacities. Events
// correspond to items, periods to display slots, capacities to the subgroup
// size bound M, and the capped CSF of AVG guarantees feasible schedules.
package seo

import (
	"fmt"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/graph"
)

// Event is one candidate event with a venue capacity. Capacity 0 means
// unlimited; otherwise it bounds the attendees assigned to the event within
// any single period.
type Event struct {
	Name     string
	Capacity int
}

// Organizer accumulates an SEO problem and solves it through SVGIC-ST.
type Organizer struct {
	events    []Event
	periods   int
	lambda    float64
	attendees []string
	g         *graph.Graph
	pref      [][]float64 // [attendee][event]
	taus      []tauEntry
}

type tauEntry struct {
	from, to, event int
	value           float64
}

// NewOrganizer creates an organizer for the given events, number of
// consecutive periods and preference/social weight λ.
func NewOrganizer(events []Event, periods int, lambda float64) (*Organizer, error) {
	if len(events) == 0 || periods <= 0 {
		return nil, fmt.Errorf("seo: need at least one event and one period")
	}
	if periods > len(events) {
		return nil, fmt.Errorf("seo: %d periods exceed %d events (attendees cannot repeat an event)", periods, len(events))
	}
	return &Organizer{events: events, periods: periods, lambda: lambda}, nil
}

// AddAttendee registers an attendee with per-event preferences and returns
// their id.
func (o *Organizer) AddAttendee(name string, prefs []float64) (int, error) {
	if len(prefs) != len(o.events) {
		return 0, fmt.Errorf("seo: attendee %q has %d preferences, want %d", name, len(prefs), len(o.events))
	}
	o.attendees = append(o.attendees, name)
	row := make([]float64, len(prefs))
	copy(row, prefs)
	o.pref = append(o.pref, row)
	return len(o.attendees) - 1, nil
}

// AddFriendship records that attendee a gains tauA per shared event with b,
// and b gains tauB with a, uniformly across events. Use AddAffinity for
// event-specific values.
func (o *Organizer) AddFriendship(a, b int, tauA, tauB float64) error {
	for e := range o.events {
		if err := o.AddAffinity(a, b, e, tauA); err != nil {
			return err
		}
		if err := o.AddAffinity(b, a, e, tauB); err != nil {
			return err
		}
	}
	return nil
}

// AddAffinity records that attendee `from` gains `value` from attending
// event `event` together with attendee `to`.
func (o *Organizer) AddAffinity(from, to, event int, value float64) error {
	if from < 0 || from >= len(o.attendees) || to < 0 || to >= len(o.attendees) {
		return fmt.Errorf("seo: attendee out of range (%d, %d)", from, to)
	}
	if event < 0 || event >= len(o.events) {
		return fmt.Errorf("seo: event %d out of range", event)
	}
	o.taus = append(o.taus, tauEntry{from: from, to: to, event: event, value: value})
	return nil
}

// Schedule is a solved event plan.
type Schedule struct {
	// PeriodEvents[p][attendee] is the event id attended in period p.
	PeriodEvents [][]int
	// Objective is the weighted SVGIC objective of the plan.
	Objective float64
	// Violations counts capacity violations (0 for AVG-ST schedules).
	Violations int

	organizer *Organizer
	conf      *core.Configuration
	in        *core.Instance
}

// Solve computes a schedule with the capped AVG solver. The capacity bound
// passed to SVGIC-ST is the *tightest* event capacity; per-event slack
// capacities are then verified exactly (the paper's model has a single M,
// so heterogeneous capacities are enforced by cap-at-minimum plus a
// best-response repair pass that only moves attendees out of over-full
// events).
func (o *Organizer) Solve(seed uint64) (*Schedule, error) {
	n := len(o.attendees)
	if n == 0 {
		return nil, fmt.Errorf("seo: no attendees")
	}
	in, err := o.instance()
	if err != nil {
		return nil, err
	}
	cap := o.minCapacity()
	if cap > 0 && n > len(o.events)*cap {
		return nil, fmt.Errorf("seo: %d attendees exceed total per-period capacity %d", n, len(o.events)*cap)
	}
	conf, _, err := core.SolveAVG(in, core.AVGOptions{Seed: seed, SizeCap: cap, Repeats: 5})
	if err != nil {
		return nil, err
	}
	core.LocalSearch(in, conf, 2, cap)
	return o.schedule(in, conf), nil
}

func (o *Organizer) minCapacity() int {
	cap := 0
	for _, e := range o.events {
		if e.Capacity > 0 && (cap == 0 || e.Capacity < cap) {
			cap = e.Capacity
		}
	}
	return cap
}

func (o *Organizer) instance() (*core.Instance, error) {
	n := len(o.attendees)
	g := graph.New(n)
	for _, t := range o.taus {
		g.AddEdge(t.from, t.to)
	}
	in := core.NewInstance(g, len(o.events), o.periods, o.lambda)
	for u, row := range o.pref {
		copy(in.Pref[u], row)
	}
	for _, t := range o.taus {
		if err := in.SetTau(t.from, t.to, t.event, t.value); err != nil {
			return nil, err
		}
	}
	return in, in.Validate()
}

func (o *Organizer) schedule(in *core.Instance, conf *core.Configuration) *Schedule {
	s := &Schedule{organizer: o, conf: conf, in: in}
	s.PeriodEvents = make([][]int, o.periods)
	for p := 0; p < o.periods; p++ {
		s.PeriodEvents[p] = make([]int, len(o.attendees))
		for u := range o.attendees {
			s.PeriodEvents[p][u] = conf.Assign[u][p]
		}
	}
	s.Objective = core.Evaluate(in, conf).Weighted()
	for p := 0; p < o.periods; p++ {
		for ev, group := range conf.SubgroupsAt(p) {
			if c := o.events[ev].Capacity; c > 0 && len(group) > c {
				s.Violations += len(group) - c
			}
		}
	}
	return s
}

// Roster returns the attendee names at the given event in the given period.
func (s *Schedule) Roster(period, event int) []string {
	var names []string
	for u, ev := range s.PeriodEvents[period] {
		if ev == event {
			names = append(names, s.organizer.attendees[u])
		}
	}
	return names
}

// AttendeePlan returns the event names attendee u visits, in period order.
func (s *Schedule) AttendeePlan(u int) []string {
	out := make([]string, len(s.PeriodEvents))
	for p := range s.PeriodEvents {
		out[p] = s.organizer.events[s.PeriodEvents[p][u]].Name
	}
	return out
}

// Regret returns the per-attendee regret ratios of the schedule.
func (s *Schedule) Regret() []float64 {
	return core.RegretRatios(s.in, s.conf)
}
