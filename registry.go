package svgic

import (
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/registry"
)

// Solution is the rich result of a Solver run: the configuration plus its
// utility report, the algorithm name, LP/rounding statistics, decomposition
// info, the IP's branch-and-bound certificate and the wall time.
type Solution = core.Solution

// Registry types: a SolverSpec names one algorithm with a validated
// parameter schema; Params carries caller-supplied parameters (native Go
// values or JSON-decoded ones — numbers as float64, durations as strings).
type (
	// SolverSpec registers one solver: name, display name, parameter schema
	// and constructor.
	SolverSpec = registry.Spec
	// SolverParams is a validated, default-filled parameter set handed to a
	// SolverSpec constructor.
	SolverParams = registry.Resolved
	// ParamSpec declares one solver parameter (name, kind, default).
	ParamSpec = registry.ParamSpec
	// ParamKind is the declared type of a solver parameter.
	ParamKind = registry.ParamKind
	// Params carries caller-supplied solver parameters by name.
	Params = registry.Params
)

// Parameter kinds for ParamSpec.
const (
	ParamInt      = registry.KindInt
	ParamUint     = registry.KindUint
	ParamFloat    = registry.KindFloat
	ParamBool     = registry.KindBool
	ParamDuration = registry.KindDuration
	ParamString   = registry.KindString
)

// RegisterSolver adds a solver to the package-level registry. Registered
// solvers are reachable everywhere solvers are named: NewSolver, the svgic
// and svgicd -algo flags, the server's "algo" request field and
// GET /v1/algorithms — without touching any of those layers.
func RegisterSolver(spec SolverSpec) error { return registry.Register(spec) }

// Solvers returns every registered solver spec in name order: the paper's
// algorithms (avg, avgd), its baselines (per, fmg, sdp, grf), the exact IP
// (ip), and anything added via RegisterSolver.
func Solvers() []SolverSpec { return registry.Specs() }

// SolverNames returns every registered solver name, sorted.
func SolverNames() []string { return registry.Names() }

// LookupSolver returns the spec registered under name.
func LookupSolver(name string) (SolverSpec, bool) { return registry.Lookup(name) }

// NewSolver builds a registered solver by name with validated parameters
// (nil for all defaults):
//
//	s, err := svgic.NewSolver("avgd", svgic.Params{"r": 1.0})
//	sol, err := s.Solve(ctx, in)
//	fmt.Println(sol.Algorithm, sol.Report.Scaled(), sol.Wall)
//
// The returned solver carries a canonical cache key of its name and resolved
// parameters, which the Engine's result cache and the server's request
// coalescing use to keep differently-parameterized solvers from aliasing.
func NewSolver(name string, params Params) (Solver, error) { return registry.New(name, params) }
