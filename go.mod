module github.com/svgic/svgic

go 1.22
