// Command datagen emits synthetic SVGIC instances in the JSON interchange
// format consumed by cmd/svgic and svgic.UnmarshalInstance, generated from
// the built-in dataset profiles.
//
// Usage:
//
//	datagen -dataset yelp -n 50 -m 300 -k 10 -lambda 0.5 -seed 7 > store.json
//	datagen -dataset timik -n 25 -m 40 -k 5 -o timik25.json
//
// With -events N it instead emits a replayable live-session trace: the
// instance plus N join/leave/updatePreference/rebalance events valid against
// it, in the schema of svgicd's /v1/sessions/{id}/events endpoint. Replay
// with `svgicd -loadgen -dynamic -trace trace.json` (what `make
// session-smoke` does) or offline via the session package.
//
// Generation is fully seeded: -seed drives the instance and, unless
// -event-seed overrides it, the event stream too (derived as seed+1), so
// the same flags always emit a byte-identical trace — CI replays are
// reproducible run to run, and a crash-recovery verification can regenerate
// the exact workload it served:
//
//	datagen -dataset timik -n 12 -m 30 -k 3 -seed 5 -event-seed 6 -events 50 -o trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	svgic "github.com/svgic/svgic"
	"github.com/svgic/svgic/internal/session"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	dataset := flag.String("dataset", "timik", "dataset profile: timik|epinions|yelp")
	n := flag.Int("n", 25, "number of shoppers")
	m := flag.Int("m", 100, "number of items")
	k := flag.Int("k", 5, "number of display slots")
	lambda := flag.Float64("lambda", 0.5, "social weight λ in [0,1]")
	seed := flag.Uint64("seed", 1, "generation seed")
	events := flag.Int("events", 0, "emit a live-session trace with this many events (0 = plain instance)")
	eventSeed := flag.Uint64("event-seed", 0, "event-stream seed (0 = derive from -seed)")
	sizeCap := flag.Int("size-cap", 0, "trace: SVGIC-ST subgroup size cap M (0 = uncapped)")
	out := flag.String("o", "-", "output file ('-' = stdout)")
	flag.Parse()

	in, err := svgic.GenerateDataset(svgic.DatasetName(*dataset), *n, *m, *k, *lambda, *seed)
	if err != nil {
		return err
	}
	var data []byte
	if *events > 0 {
		es := *eventSeed
		if es == 0 {
			es = *seed + 1
		}
		data, err = json.MarshalIndent(session.NewTrace(in, *sizeCap, *events, es), "", "  ")
	} else {
		data, err = svgic.MarshalInstance(in)
	}
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
