// Command datagen emits synthetic SVGIC instances in the JSON interchange
// format consumed by cmd/svgic and svgic.UnmarshalInstance, generated from
// the built-in dataset profiles.
//
// Usage:
//
//	datagen -dataset yelp -n 50 -m 300 -k 10 -lambda 0.5 -seed 7 > store.json
//	datagen -dataset timik -n 25 -m 40 -k 5 -o timik25.json
package main

import (
	"flag"
	"fmt"
	"os"

	svgic "github.com/svgic/svgic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	dataset := flag.String("dataset", "timik", "dataset profile: timik|epinions|yelp")
	n := flag.Int("n", 25, "number of shoppers")
	m := flag.Int("m", 100, "number of items")
	k := flag.Int("k", 5, "number of display slots")
	lambda := flag.Float64("lambda", 0.5, "social weight λ in [0,1]")
	seed := flag.Uint64("seed", 1, "generation seed")
	out := flag.String("o", "-", "output file ('-' = stdout)")
	flag.Parse()

	in, err := svgic.GenerateDataset(svgic.DatasetName(*dataset), *n, *m, *k, *lambda, *seed)
	if err != nil {
		return err
	}
	data, err := svgic.MarshalInstance(in)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
