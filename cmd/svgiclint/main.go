// Command svgiclint is the project's static-analysis driver: a multichecker
// for the invariant analyzers under internal/analysis (locksolve, lockorder,
// goleak, cloneescape, ctxthread, seedrand, nodeprecated).
//
// It runs two ways:
//
//	svgiclint [-json] [dir]             # standalone: analyze the whole module
//	go vet -vettool=$(pwd)/bin/svgiclint ./...   # vet mode: per-unit, test files included
//
// The vet mode is the canonical `make lint` path — `go vet` hands the tool
// test compilation units too, which is where the sanctioned deprecated-API
// call sites live. Findings print as file:line:col: [analyzer] message and
// exit nonzero; -json switches the standalone mode to one machine-readable
// JSON array of diagnostics on stdout for CI and editors.
package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/svgic/svgic/internal/analysis"
	"github.com/svgic/svgic/internal/analysis/cloneescape"
	"github.com/svgic/svgic/internal/analysis/ctxthread"
	"github.com/svgic/svgic/internal/analysis/goleak"
	"github.com/svgic/svgic/internal/analysis/lockorder"
	"github.com/svgic/svgic/internal/analysis/locksolve"
	"github.com/svgic/svgic/internal/analysis/nodeprecated"
	"github.com/svgic/svgic/internal/analysis/seedrand"
)

// version is what `svgiclint -V=full` reports; `go vet` hashes this line into
// its action cache, so bump it when analyzer behavior changes. v2 is the
// concurrency suite: lockorder + goleak, and facts carrying lock classes.
const version = "v2.0.0"

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cloneescape.Analyzer,
		ctxthread.Analyzer,
		goleak.Analyzer,
		lockorder.Analyzer,
		locksolve.Analyzer,
		nodeprecated.Analyzer,
		seedrand.Analyzer,
	}
}

func main() {
	args := os.Args[1:]
	for _, arg := range args {
		switch arg {
		case "-V=full", "--V=full", "-V":
			// The go command probes vet tools with -V=full and expects
			// "<basename> version <version>".
			fmt.Printf("svgiclint version %s\n", version)
			return
		case "-flags", "--flags":
			// The go command asks a vettool which flags it supports; this one
			// deliberately has none — per-finding //lint:ignore directives are
			// the only sanctioned suppression mechanism, not flag-level
			// disables.
			fmt.Println("[]")
			return
		case "-list", "--list":
			for _, a := range analyzers() {
				fmt.Printf("%-12s %s\n", a.Name, a.Doc)
			}
			return
		case "-h", "-help", "--help":
			usage()
			return
		}
	}

	// Vet mode: the go command invokes the tool with a JSON config file as
	// the last argument.
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(unitcheck(args[len(args)-1], analyzers()))
	}

	jsonOut := false
	if len(args) > 0 && (args[0] == "-json" || args[0] == "--json") {
		jsonOut = true
		args = args[1:]
	}
	dir := "."
	if len(args) > 0 {
		dir = args[0]
	}
	os.Exit(standalone(dir, analyzers(), jsonOut))
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  svgiclint [-json] [dir]   analyze every package of the module rooted at dir
  svgiclint -list           print the analyzers and the invariants they enforce
  go vet -vettool=/path/to/svgiclint ./...
`)
}

// standalone loads the module from source and runs every analyzer over every
// package, in dependency order so facts are always available.
func standalone(dir string, suite []*analysis.Analyzer, jsonOut bool) int {
	pkgs, loader, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svgiclint: %v\n", err)
		return 1
	}
	exit := 0
	var found []jsonDiag
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, loader.Facts, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svgiclint: %s: %v\n", pkg.Path, err)
			return 1
		}
		for _, d := range diags {
			exit = 1
			if jsonOut {
				found = append(found, newJSONDiag(pkg.Fset, d))
				continue
			}
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if jsonOut {
		if err := writeJSONDiags(os.Stdout, found); err != nil {
			fmt.Fprintf(os.Stderr, "svgiclint: %v\n", err)
			return 1
		}
	}
	return exit
}
