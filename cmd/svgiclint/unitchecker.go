package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"github.com/svgic/svgic/internal/analysis"
)

// modulePath scopes vet-mode analysis: units outside the module (the standard
// library and its test shims, which `go vet` also schedules so dependency
// fact files exist) get an empty fact file and no analysis. Project
// invariants are about project code; staticcheck owns the generic checks.
const modulePath = "github.com/svgic/svgic"

// vetConfig is the JSON the go command writes for each compilation unit when
// a -vettool is set (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one vet compilation unit. It always writes the fact
// file the go command asked for (dependents block on it), then reports
// diagnostics on stderr with exit status 2, the vet convention.
func unitcheck(cfgFile string, suite []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("parsing vet config %s: %w", cfgFile, err))
	}

	inModule := strings.Contains(cfg.ImportPath, modulePath)
	if !inModule || len(cfg.GoFiles) == 0 {
		return writeFacts(cfg.VetxOutput, analysis.NewFacts())
	}

	facts := analysis.NewFacts()
	for _, vetx := range cfg.PackageVetx {
		fdata, err := os.ReadFile(vetx)
		if err != nil {
			return fail(err)
		}
		if len(fdata) > 0 {
			if err := facts.Merge(fdata); err != nil {
				return fail(fmt.Errorf("merging facts from %s: %w", vetx, err))
			}
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeFacts(cfg.VetxOutput, analysis.NewFacts())
			}
			return fail(err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tconf := types.Config{Importer: newUnitImporter(fset, &cfg)}
	if v := cfg.GoVersion; v != "" && strings.HasPrefix(v, "go") {
		tconf.GoVersion = v
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeFacts(cfg.VetxOutput, analysis.NewFacts())
		}
		return fail(fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err))
	}

	analysis.ComputePackageFacts(fset, files, info, facts)
	if code := writeFacts(cfg.VetxOutput, facts); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg := &analysis.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := analysis.Run(pkg, facts, suite)
	if err != nil {
		return fail(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func writeFacts(path string, facts *analysis.Facts) int {
	if path == "" {
		return 0
	}
	data, err := facts.ExportAll()
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		return fail(err)
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "svgiclint: %v\n", err)
	return 1
}

// unitImporter resolves a unit's imports through the export files the go
// command listed in the vet config.
type unitImporter struct {
	cfg *vetConfig
	gc  types.ImporterFrom
}

func newUnitImporter(fset *token.FileSet, cfg *vetConfig) *unitImporter {
	u := &unitImporter{cfg: cfg}
	u.gc = importer.ForCompiler(fset, "gc", u.lookup).(types.ImporterFrom)
	return u
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if real, ok := u.cfg.ImportMap[path]; ok {
		path = real
	}
	return u.gc.ImportFrom(path, u.cfg.Dir, 0)
}

func (u *unitImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := u.cfg.PackageFile[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q in vet config", path)
	}
	return os.Open(file)
}
