package main

import (
	"bytes"
	"go/token"
	"reflect"
	"strings"
	"testing"

	"github.com/svgic/svgic/internal/analysis"
)

// TestJSONDiagRoundTrip: encode a batch of diagnostics (chain and no-chain),
// decode it, and require the exact same values back.
func TestJSONDiagRoundTrip(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("internal/session/shard.go", -1, 1000)
	f.SetLines([]int{0, 40, 90, 150})

	diags := []analysis.Diagnostic{
		{
			Pos:      f.Pos(95),
			Analyzer: "lockorder",
			Message:  "lock-order cycle (potential deadlock): session.Session.mu -> session.shard.mu (shard.go:2) -> session.Session.mu (session.go:7); acquire these lock classes in one fixed order",
			Chain: []string{
				"session.Session.mu -> session.shard.mu (shard.go:2)",
				"session.shard.mu -> session.Session.mu (session.go:7)",
			},
		},
		{
			Pos:      f.Pos(41),
			Analyzer: "goleak",
			Message:  "untracked goroutine: not WaitGroup-tracked and not lifecycle-terminated",
		},
	}

	var want []jsonDiag
	for _, d := range diags {
		want = append(want, newJSONDiag(fset, d))
	}
	if want[0].File != "internal/session/shard.go" || want[0].Line != 3 {
		t.Fatalf("position resolution off: %+v", want[0])
	}

	var buf bytes.Buffer
	if err := writeJSONDiags(&buf, want); err != nil {
		t.Fatalf("encoding: %v", err)
	}
	got, err := parseJSONDiags(&buf)
	if err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got  %+v\n want %+v", got, want)
	}
}

// TestJSONDiagEmpty: a clean run must emit a JSON array, not null.
func TestJSONDiagEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSONDiags(&buf, nil); err != nil {
		t.Fatalf("encoding: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty encoding = %q, want []", got)
	}
	diags, err := parseJSONDiags(&buf)
	if err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("decoded %d diags from empty array", len(diags))
	}
}
