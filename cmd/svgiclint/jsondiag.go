package main

import (
	"encoding/json"
	"go/token"
	"io"

	"github.com/svgic/svgic/internal/analysis"
)

// jsonDiag is the machine-readable diagnostic emitted by `svgiclint -json`:
// one object per finding, position resolved to file/line/col, with the
// structured evidence chain (lockorder's acquisition chain) that the
// plain-text format can only inline into the message. CI uploads the array
// as a build artifact; editors map it straight to markers.
type jsonDiag struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

func newJSONDiag(fset *token.FileSet, d analysis.Diagnostic) jsonDiag {
	pos := fset.Position(d.Pos)
	return jsonDiag{
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
		Chain:    d.Chain,
	}
}

// writeJSONDiags emits the findings as one indented JSON array. An empty run
// prints [] rather than null so consumers always see an array.
func writeJSONDiags(w io.Writer, diags []jsonDiag) error {
	if diags == nil {
		diags = []jsonDiag{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// parseJSONDiags is the inverse of writeJSONDiags, used by the round-trip
// test (and available to any Go-side consumer of the artifact).
func parseJSONDiags(r io.Reader) ([]jsonDiag, error) {
	var out []jsonDiag
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
