// Command experiments reproduces the tables and figures of "Optimizing Item
// and Subgroup Configurations for Social-Aware VR Shopping" (PVLDB 2020) on
// the library's synthetic dataset substrates.
//
// Usage:
//
//	experiments -list
//	experiments [flags] all
//	experiments [flags] fig5 fig10 ...
//
// Flags:
//
//	-list          list the experiment ids and what they reproduce
//	-quick         shrink every sweep (smoke run)
//	-seed N        experiment seed (default 1)
//	-samples N     instances averaged per sweep point (default 3)
//	-csv DIR       additionally write each table as DIR/<experiment>_<i>.csv
//	-engine        run the concurrent batch-engine demo instead of experiments
//	-workers N     engine demo: pool size to sweep up to (default GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/svgic/svgic/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	list := flag.Bool("list", false, "list experiments")
	quick := flag.Bool("quick", false, "shrink every sweep (smoke run)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	samples := flag.Int("samples", 3, "instances averaged per sweep point")
	csvDir := flag.String("csv", "", "write tables as CSV into this directory")
	useEngine := flag.Bool("engine", false, "run the concurrent batch-engine demo")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine demo: pool size to sweep up to")
	flag.Parse()

	if *useEngine {
		return engineDemo(*workers, *quick, *seed)
	}
	if *list {
		for _, r := range eval.Registry() {
			fmt.Printf("  %-10s %s\n", r.ID, r.Paper)
		}
		return nil
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return fmt.Errorf("no experiments given (try -list or 'all')")
	}
	var runners []eval.Runner
	if len(args) == 1 && args[0] == "all" {
		runners = eval.Registry()
	} else {
		for _, id := range args {
			r, err := eval.Lookup(id)
			if err != nil {
				return err
			}
			runners = append(runners, r)
		}
	}
	cfg := eval.DefaultConfig()
	cfg.Quick = *quick
	cfg.Seed = *seed
	cfg.Samples = *samples

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, r := range runners {
		fmt.Printf("--- %s (%s) ---\n", r.ID, r.Paper)
		start := time.Now()
		tabs, err := r.Fn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		for i, tab := range tabs {
			tab.Fprint(os.Stdout)
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", r.ID, i))
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
		fmt.Printf("(%s finished in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
