package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/engine"
	"github.com/svgic/svgic/internal/eval"
)

// engineDemo exercises the concurrent batch engine: it builds a batch of
// multi-component instances (several independent shopping groups folded into
// one social network each), solves the batch at increasing worker counts,
// verifies every run returns the deterministic AVG-D objective, and reports
// throughput, latency and the effect of the result cache on a repeated batch.
func engineDemo(workers int, quick bool, seed uint64) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batchSize, blocks, blockN, items, k := 24, 6, 8, 40, 4
	if quick {
		batchSize, blocks = 8, 4
	}
	ins := make([]*core.Instance, batchSize)
	for i := range ins {
		ins[i] = datasets.MultiGroup(seed+uint64(i), blocks, blockN, items, k, 0.5)
	}

	// Reference objectives from the serial library call.
	want := make([]float64, batchSize)
	for i, in := range ins {
		conf, _, err := core.SolveAVGD(in, core.AVGDOptions{})
		if err != nil {
			return err
		}
		want[i] = core.Evaluate(in, conf).Weighted()
	}

	tab := &eval.Table{
		Title:   fmt.Sprintf("Engine batch throughput (%d instances × %d components)", batchSize, blocks),
		Columns: []string{"workers", "wall ms", "inst/s", "components", "avg latency ms", "cache hits"},
	}
	ctx := context.Background()
	for _, w := range workerSweep(workers) {
		e := engine.New(engine.Options{Workers: w, CacheSize: -1})
		start := time.Now()
		sols, err := e.SolveBatch(ctx, ins)
		wall := time.Since(start)
		if err != nil {
			e.Close()
			return err
		}
		for i, sol := range sols {
			got := sol.Report.Weighted()
			if math.Abs(got-want[i]) > 1e-9 {
				e.Close()
				return fmt.Errorf("engine diverged from SolveAVGD on instance %d: %.12f vs %.12f", i, got, want[i])
			}
		}
		st := e.Stats()
		e.Close()
		tab.Addf(fmt.Sprintf("%d", w), wall.Milliseconds(),
			fmt.Sprintf("%.1f", float64(batchSize)/wall.Seconds()),
			int(st.ComponentsSolved),
			fmt.Sprintf("%.2f", float64(st.AvgLatency().Microseconds())/1000),
			int(st.CacheHits))
	}

	// Cache pass: the same batch twice through one cached engine — the second
	// pass must be answered from the LRU without touching the pool.
	e := engine.New(engine.Options{Workers: workers, CacheSize: 2 * batchSize})
	defer e.Close()
	if _, err := e.SolveBatch(ctx, ins); err != nil {
		return err
	}
	warm := e.Stats() // snapshot after the priming pass
	start := time.Now()
	if _, err := e.SolveBatch(ctx, ins); err != nil {
		return err
	}
	wall := time.Since(start)
	st := e.Stats()
	// Second-pass deltas only: a fully cached pass solves 0 components and
	// has no solver latency.
	tab.Addf(fmt.Sprintf("%d (cached repeat)", workers), wall.Milliseconds(),
		fmt.Sprintf("%.1f", float64(batchSize)/wall.Seconds()),
		int(st.ComponentsSolved-warm.ComponentsSolved),
		fmt.Sprintf("%.2f", float64((st.TotalLatency-warm.TotalLatency).Microseconds())/1000),
		int(st.CacheHits-warm.CacheHits))

	tab.Fprint(os.Stdout)
	return nil
}

// workerSweep returns the worker counts to demo: powers of two up to max,
// always including 1 and max.
func workerSweep(max int) []int {
	ws := []int{1}
	for w := 2; w < max; w *= 2 {
		ws = append(ws, w)
	}
	if max > 1 {
		ws = append(ws, max)
	}
	return ws
}
