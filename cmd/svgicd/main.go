// Command svgicd serves SVGIC solves over HTTP: the network front door of
// the batch engine, with bounded-in-flight admission control (429 +
// Retry-After under overload), per-request deadlines, per-request algorithm
// selection from the solver registry ("algo"/"params" request fields, GET
// /v1/algorithms for discovery), request coalescing keyed on (instance,
// solver) and graceful drain on SIGINT/SIGTERM.
//
// Serve:
//
//	svgicd -addr :8080 -workers 8 -cache 512 -algo avgd
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/algorithms
//	curl -s -XPOST localhost:8080/v1/solve?timeout=500ms -d @store.json
//	curl -s -XPOST localhost:8080/v1/solve -d '{"algo":"per", ...instance...}'
//	curl -s -XPOST localhost:8080/v1/solve/batch -d @stores.json
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics        # Prometheus text format
//
// With -slo, the daemon tracks declarative latency objectives over sliding
// t-digest windows and (unless -no-adaptive-admission) walks a
// degrade-then-shed ladder while an objective burns: expensive algorithms
// (ip, sdp) are rerouted to -slo-degrade-algo with "degraded":true in the
// response, and under sustained burn the effective in-flight cap tightens.
// See docs/OBSERVABILITY.md for the grammar and the burn-rate model:
//
//	svgicd -slo "p99 solve < 250ms over 5m" -slo-degrade-algo avgd
//	svgicd -slo "p99 solve < 250ms over 5m, p50 repair < 50ms over 1m"
//
// With -data-dir, live sessions are durable: each gets a write-ahead event
// log plus periodic snapshots (-snapshot-every bounds the recovery tail,
// -fsync picks always|interval|off), and a restart recovers every session
// at its exact pre-crash (version, value, configuration):
//
//	svgicd -data-dir /var/lib/svgic -fsync always -snapshot-every 256
//
// The crash contract is testable end to end: `-loadgen -dynamic -crash`
// spawns a child svgicd, SIGKILLs it mid-churn, restarts it on the same
// directory and verifies every recovered session against an offline replay
// (what `make crash-smoke` runs in CI).
//
// Load-generate (reports throughput, latency percentiles, cache/coalesce
// hit rates; exits non-zero on any status other than 200/429). In loadgen
// mode -algo accepts a comma-separated list and the generated requests cycle
// through it, exercising the per-algorithm serving path:
//
//	svgicd -loadgen -requests 300 -dup-frac 0.5 -conc 8
//	svgicd -loadgen -algo avgd,per,avg -requests 600
//	svgicd -loadgen -target http://localhost:8080 -rps 200 -requests 1000
//
// The API speaks the core.InstanceJSON interchange schema (see the svgic
// CLI and EXPERIMENTS.md); request bodies are decoded strictly — unknown
// fields are a 400, never a silent drop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	svgic "github.com/svgic/svgic"
	"github.com/svgic/svgic/internal/server"
	"github.com/svgic/svgic/internal/session"
	"github.com/svgic/svgic/internal/store"
	"github.com/svgic/svgic/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "svgicd:", err)
		os.Exit(1)
	}
}

type config struct {
	addr        string
	workers     int
	cache       int
	algo        string
	seed        uint64
	sizeCap     int
	timeout     time.Duration
	maxTimeout  time.Duration
	maxInFlight int
	maxBatch    int
	noCoalesce  bool

	slo                 string
	sloDegradeAlgo      string
	noAdaptiveAdmission bool

	maxSessions    int
	sessionShards  int
	sessionTTL     time.Duration
	repairInterval time.Duration
	repairMargin   float64
	noDeltaRepair  bool
	noWarmStart    bool

	dataDir       string
	fsync         string
	fsyncInterval time.Duration
	snapshotEvery int

	loadgen          bool
	target           string
	requests         int
	rps              int
	dupFrac          float64
	conc             int
	assertSLODegrade bool

	dynamic    bool
	sessions   int
	eventBatch int
	trace      string
	crash      bool
}

func run() error {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.workers, "workers", 0, "solver workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.cache, "cache", svgic.DefaultEngineCacheSize, "result cache size (negative disables)")
	flag.StringVar(&cfg.algo, "algo", "avgd",
		"default solver: "+strings.Join(svgic.SolverNames(), "|")+" (loadgen: comma-separated list to mix)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed (solvers with a seed parameter)")
	flag.IntVar(&cfg.sizeCap, "size-cap", 0, "SVGIC-ST subgroup size cap M (0 = uncapped)")
	flag.DurationVar(&cfg.timeout, "timeout", server.DefaultTimeout, "default per-request solve deadline")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", server.DefaultMaxTimeout, "cap on client-requested timeouts")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", 0, "admission limit (0 = 4×workers); excess load is shed with 429")
	flag.IntVar(&cfg.maxBatch, "max-batch", server.DefaultMaxBatch, "max instances per batch request")
	flag.BoolVar(&cfg.noCoalesce, "no-coalesce", false, "disable request coalescing")

	flag.StringVar(&cfg.slo, "slo", "",
		`latency objectives, comma-separated "p<pct> <series> < <duration> over <duration>" (e.g. "p99 solve < 250ms over 5m"); series are routes (solve, batch, evaluate, session_create, session_events, session_get), per-algorithm solves (algo:<NAME>) or drift repair (repair). Empty = measure only, no objectives`)
	flag.StringVar(&cfg.sloDegradeAlgo, "slo-degrade-algo", "avgd",
		"cheap fallback algorithm expensive requests (ip, sdp) are rerouted to while an objective is burning")
	flag.BoolVar(&cfg.noAdaptiveAdmission, "no-adaptive-admission", false,
		"report SLO burn rates in /v1/stats and /metrics but never degrade or shed on them")

	flag.IntVar(&cfg.maxSessions, "max-sessions", session.DefaultMaxSessions,
		"live-session admission bound; creates beyond it are shed with 429")
	flag.IntVar(&cfg.sessionShards, "session-shards", 0,
		"hash-partitioned session shard count: each shard is an independent lock domain with its own eviction/repair goroutine (0 = GOMAXPROCS, 1 = single-lock)")
	flag.DurationVar(&cfg.sessionTTL, "session-ttl", 10*time.Minute,
		"evict live sessions idle longer than this (0 = never)")
	flag.DurationVar(&cfg.repairInterval, "repair-interval", 0,
		"drift repair: periodically re-solve each live session through the engine and swap in the result when it beats the incremental configuration (0 = off)")
	flag.Float64Var(&cfg.repairMargin, "repair-margin", session.DefaultRepairMargin,
		"drift repair: relative improvement a re-solve must show to be swapped in (0 = the 0.01 default; negative = swap on any strict improvement)")
	flag.BoolVar(&cfg.noDeltaRepair, "no-delta-repair", false,
		"drift repair: disable the dirty-component delta re-solve; every repair cycle re-solves the whole instance (escape hatch / baseline)")
	flag.BoolVar(&cfg.noWarmStart, "no-warm-start", false,
		"drift repair: disable warm-starting repair solves from the session's incumbent configuration (escape hatch / baseline)")

	flag.StringVar(&cfg.dataDir, "data-dir", "",
		"durable session store directory: live sessions get a write-ahead log + snapshots there and are recovered on restart (empty = in-memory only)")
	flag.StringVar(&cfg.fsync, "fsync", "interval",
		"WAL fsync policy: always (every record durable before the writer moves on) | interval (bounded loss window) | off (OS decides)")
	flag.DurationVar(&cfg.fsyncInterval, "fsync-interval", store.DefaultSyncInterval,
		"dirty-log fsync cadence under -fsync interval")
	flag.IntVar(&cfg.snapshotEvery, "snapshot-every", session.DefaultSnapshotEvery,
		"cut a session snapshot (and compact its WAL) every N applied events; bounds recovery replay to the post-snapshot tail")

	flag.BoolVar(&cfg.loadgen, "loadgen", false, "run the load generator instead of serving")
	flag.StringVar(&cfg.target, "target", "", "loadgen target base URL (empty = spin up an in-process server)")
	flag.IntVar(&cfg.requests, "requests", 300, "loadgen: total requests (dynamic mode: total events)")
	flag.IntVar(&cfg.rps, "rps", 0, "loadgen: request rate (0 = unthrottled)")
	flag.Float64Var(&cfg.dupFrac, "dup-frac", 0.5, "loadgen: fraction of requests that repeat the hot instance")
	flag.IntVar(&cfg.conc, "conc", 8, "loadgen: concurrent clients")
	flag.BoolVar(&cfg.assertSLODegrade, "assert-slo-degrade", false,
		"loadgen: fail unless the run drove the server's SLO controller to degrade at least one request without flapping (what `make slo-smoke` asserts)")

	flag.BoolVar(&cfg.dynamic, "dynamic", false, "loadgen: drive live-session churn against /v1/sessions instead of /v1/solve")
	flag.IntVar(&cfg.sessions, "sessions", 4, "dynamic loadgen: concurrent live sessions")
	flag.IntVar(&cfg.eventBatch, "event-batch", 4, "dynamic loadgen: events per POST")
	flag.StringVar(&cfg.trace, "trace", "", "dynamic loadgen: replay a datagen -events trace file into every session (empty = generate churn)")
	flag.BoolVar(&cfg.crash, "crash", false,
		"dynamic loadgen: kill/restart/verify mode — spawn a child svgicd on -data-dir, SIGKILL it mid-churn, restart it, and assert every recovered session matches an offline replay (requires -data-dir)")
	flag.Parse()

	if cfg.loadgen && cfg.dynamic && cfg.crash {
		return runCrashLoadgen(cfg)
	}
	if cfg.loadgen && cfg.dynamic {
		return runDynamicLoadgen(cfg)
	}
	if cfg.loadgen {
		return runLoadgen(cfg)
	}
	return serve(cfg)
}

// app is the assembled serving stack. Shutdown order matters and is the
// reverse of construction: HTTP drain, then the manager (flushes its
// persist outboxes), then the store (drains writer shards, fsyncs, closes
// logs), then the engine.
type app struct {
	eng *svgic.Engine
	st  *store.Store // nil without -data-dir
	mgr *session.Manager
	srv *server.Server
}

// close tears the stack down in dependency order (idempotent components).
func (a *app) close() {
	a.mgr.Close()
	if a.st != nil {
		a.st.Close()
	}
	a.eng.Close()
}

// newApp builds the engine (+ optional durable store) + session manager +
// server stack from flags. With -data-dir, every persisted session is
// recovered into the manager before the server takes a request.
func newApp(cfg config) (*app, error) {
	algo := cfg.algo
	if i := strings.IndexByte(algo, ','); i >= 0 {
		algo = algo[:i] // loadgen mixes; the in-process server defaults to the first
	}
	newSolver, params, err := pickSolver(algo, cfg)
	if err != nil {
		return nil, err
	}
	slos, err := telemetry.ParseObjectives(cfg.slo)
	if err != nil {
		return nil, err
	}
	// One tracker is shared by every layer: the server records per-route
	// request latency, the engine per-algorithm solve wall time and the
	// session manager drift-repair cycles — so -slo objectives can target
	// any of them by series name.
	tel := telemetry.NewTracker(telemetry.TrackerOptions{})
	eng := svgic.NewEngine(svgic.EngineOptions{
		Workers:   cfg.workers,
		CacheSize: cfg.cache,
		NewSolver: newSolver,
		SolveObserver: func(algo string, wall time.Duration) {
			tel.Record("algo:"+algo, wall)
		},
	})
	var st *store.Store
	if cfg.dataDir != "" {
		policy, err := store.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			eng.Close()
			return nil, err
		}
		backend, err := store.NewFS(cfg.dataDir)
		if err != nil {
			eng.Close()
			return nil, err
		}
		st, err = store.Open(store.Options{
			Backend:      backend,
			Sync:         policy,
			SyncInterval: cfg.fsyncInterval,
			// Align the persister's writer shards with the session shards:
			// outbox dispatch stays ordered per session but parallel across
			// shards, so the durable path scales with the serving path.
			Shards: cfg.sessionShards,
		})
		if err != nil {
			eng.Close()
			return nil, err
		}
	}
	mgr, err := session.NewManager(session.Options{
		Engine:         eng,
		Shards:         cfg.sessionShards,
		MaxSessions:    cfg.maxSessions,
		TTL:            cfg.sessionTTL,
		RepairInterval: cfg.repairInterval,
		RepairMargin:   cfg.repairMargin,
		NoDeltaRepair:  cfg.noDeltaRepair,
		NoWarmStart:    cfg.noWarmStart,
		Persister:      persisterOrNil(st),
		SnapshotEvery:  cfg.snapshotEvery,
		RepairObserver: func(d time.Duration) { tel.Record("repair", d) },
	})
	if err != nil {
		if st != nil {
			st.Close()
		}
		eng.Close()
		return nil, err
	}
	srv, err := server.New(server.Options{
		Engine: eng,
		// Same name AND same flag-derived params as the engine default, so a
		// request saying {"algo": "<default>"} resolves the identical solver
		// (and shares cache entries with bare requests).
		DefaultAlgo:    algo,
		DefaultParams:  params,
		MaxInFlight:    cfg.maxInFlight,
		DefaultTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTimeout,
		MaxBatch:       cfg.maxBatch,
		NoCoalesce:     cfg.noCoalesce,
		Sessions:       mgr,
		Store:          st,

		Telemetry:           tel,
		SLOs:                slos,
		DegradeAlgo:         cfg.sloDegradeAlgo,
		NoAdaptiveAdmission: cfg.noAdaptiveAdmission,
	})
	if err != nil {
		mgr.Close()
		if st != nil {
			st.Close()
		}
		eng.Close()
		return nil, err
	}
	return &app{eng: eng, st: st, mgr: mgr, srv: srv}, nil
}

// persisterOrNil avoids the classic typed-nil-in-interface trap: a nil
// *store.Store stuffed into the Persister interface would be non-nil to the
// manager and panic on first use.
func persisterOrNil(st *store.Store) session.Persister {
	if st == nil {
		return nil
	}
	return st
}

// pickSolver resolves the default solver from the registry, mapping the
// daemon's flags onto whichever parameters the solver's schema declares,
// and returns the parameters too (the server needs them so explicit
// {"algo": default} requests resolve identically). The flag help and the
// unknown-algorithm error are both derived from the registry, so a newly
// registered solver is reachable without touching this file.
func pickSolver(algo string, cfg config) (func() svgic.Solver, svgic.Params, error) {
	spec, ok := svgic.LookupSolver(algo)
	if !ok {
		return nil, nil, fmt.Errorf("unknown algorithm %q (want one of: %s)",
			algo, strings.Join(svgic.SolverNames(), ", "))
	}
	params := svgic.Params{}
	for _, p := range spec.Params {
		switch p.Name {
		case "seed":
			params["seed"] = cfg.seed
		case "sizeCap":
			if cfg.sizeCap > 0 {
				params["sizeCap"] = cfg.sizeCap
			}
		}
	}
	// Validate once up front so a bad flag combination fails at startup, not
	// on the first request.
	if _, err := svgic.NewSolver(spec.Name, params); err != nil {
		return nil, nil, err
	}
	return func() svgic.Solver {
		s, err := svgic.NewSolver(spec.Name, params)
		if err != nil {
			panic(err) // validated above; cannot fail
		}
		return s
	}, params, nil
}

func serve(cfg config) error {
	if strings.ContainsRune(cfg.algo, ',') {
		return fmt.Errorf("-algo %q: comma-separated lists are loadgen-only; serve mode takes one default algorithm", cfg.algo)
	}
	a, err := newApp(cfg)
	if err != nil {
		return err
	}
	defer a.close()

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           a.srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	// Contract: ListenAndServe returns when the graceful-shutdown path below
	// calls httpSrv.Shutdown (or Close on timeout) — net/http's lifecycle,
	// invisible to the WaitGroup / done-channel model; errCh is buffered so
	// the send never blocks the exit.
	//lint:ignore goleak acceptor terminated by httpSrv.Shutdown/Close in the drain path below
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "svgicd: serving on %s (workers=%d cache=%d algo=%s max-inflight=%d max-sessions=%d session-shards=%d repair=%s)\n",
		cfg.addr, a.eng.Stats().Workers, cfg.cache, cfg.algo, a.srv.StatsSnapshot().Server.MaxInFlight,
		cfg.maxSessions, a.mgr.Shards(), cfg.repairInterval)
	if cfg.slo != "" {
		fmt.Fprintf(os.Stderr, "svgicd: latency objectives %q (degrade-algo=%s adaptive-admission=%v)\n",
			cfg.slo, cfg.sloDegradeAlgo, !cfg.noAdaptiveAdmission)
	}
	if a.st != nil {
		st := a.st.Stats()
		fmt.Fprintf(os.Stderr, "svgicd: durable store at %s (fsync=%s snapshot-every=%d): recovered %d session(s), replayed %d WAL record(s)/%d event(s), torn tails=%d, errors=%d\n",
			cfg.dataDir, st.Policy, cfg.snapshotEvery, st.RecoveredSessions, st.ReplayedRecords, st.ReplayedEvents, st.TornTails, st.RecoveryErrors)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight solves, then (via
	// the deferred close) flush the session manager into the store, drain
	// and fsync the store, and release the engine's worker pool.
	fmt.Fprintln(os.Stderr, "svgicd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := a.srv.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "svgicd: drained cleanly")
	return nil
}
