// Command svgicd serves SVGIC solves over HTTP: the network front door of
// the batch engine, with bounded-in-flight admission control (429 +
// Retry-After under overload), per-request deadlines, per-request algorithm
// selection from the solver registry ("algo"/"params" request fields, GET
// /v1/algorithms for discovery), request coalescing keyed on (instance,
// solver) and graceful drain on SIGINT/SIGTERM.
//
// Serve:
//
//	svgicd -addr :8080 -workers 8 -cache 512 -algo avgd
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/algorithms
//	curl -s -XPOST localhost:8080/v1/solve?timeout=500ms -d @store.json
//	curl -s -XPOST localhost:8080/v1/solve -d '{"algo":"per", ...instance...}'
//	curl -s -XPOST localhost:8080/v1/solve/batch -d @stores.json
//	curl -s localhost:8080/v1/stats
//
// Load-generate (reports throughput, latency percentiles, cache/coalesce
// hit rates; exits non-zero on any status other than 200/429). In loadgen
// mode -algo accepts a comma-separated list and the generated requests cycle
// through it, exercising the per-algorithm serving path:
//
//	svgicd -loadgen -requests 300 -dup-frac 0.5 -conc 8
//	svgicd -loadgen -algo avgd,per,avg -requests 600
//	svgicd -loadgen -target http://localhost:8080 -rps 200 -requests 1000
//
// The API speaks the core.InstanceJSON interchange schema (see the svgic
// CLI and EXPERIMENTS.md); request bodies are decoded strictly — unknown
// fields are a 400, never a silent drop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	svgic "github.com/svgic/svgic"
	"github.com/svgic/svgic/internal/server"
	"github.com/svgic/svgic/internal/session"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "svgicd:", err)
		os.Exit(1)
	}
}

type config struct {
	addr        string
	workers     int
	cache       int
	algo        string
	seed        uint64
	sizeCap     int
	timeout     time.Duration
	maxTimeout  time.Duration
	maxInFlight int
	maxBatch    int
	noCoalesce  bool

	maxSessions    int
	sessionTTL     time.Duration
	repairInterval time.Duration
	repairMargin   float64

	loadgen  bool
	target   string
	requests int
	rps      int
	dupFrac  float64
	conc     int

	dynamic    bool
	sessions   int
	eventBatch int
	trace      string
}

func run() error {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.workers, "workers", 0, "solver workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.cache, "cache", svgic.DefaultEngineCacheSize, "result cache size (negative disables)")
	flag.StringVar(&cfg.algo, "algo", "avgd",
		"default solver: "+strings.Join(svgic.SolverNames(), "|")+" (loadgen: comma-separated list to mix)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed (solvers with a seed parameter)")
	flag.IntVar(&cfg.sizeCap, "size-cap", 0, "SVGIC-ST subgroup size cap M (0 = uncapped)")
	flag.DurationVar(&cfg.timeout, "timeout", server.DefaultTimeout, "default per-request solve deadline")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", server.DefaultMaxTimeout, "cap on client-requested timeouts")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", 0, "admission limit (0 = 4×workers); excess load is shed with 429")
	flag.IntVar(&cfg.maxBatch, "max-batch", server.DefaultMaxBatch, "max instances per batch request")
	flag.BoolVar(&cfg.noCoalesce, "no-coalesce", false, "disable request coalescing")

	flag.IntVar(&cfg.maxSessions, "max-sessions", session.DefaultMaxSessions,
		"live-session admission bound; creates beyond it are shed with 429")
	flag.DurationVar(&cfg.sessionTTL, "session-ttl", 10*time.Minute,
		"evict live sessions idle longer than this (0 = never)")
	flag.DurationVar(&cfg.repairInterval, "repair-interval", 0,
		"drift repair: periodically re-solve each live session through the engine and swap in the result when it beats the incremental configuration (0 = off)")
	flag.Float64Var(&cfg.repairMargin, "repair-margin", session.DefaultRepairMargin,
		"drift repair: relative improvement a re-solve must show to be swapped in (0 = the 0.01 default; negative = swap on any strict improvement)")

	flag.BoolVar(&cfg.loadgen, "loadgen", false, "run the load generator instead of serving")
	flag.StringVar(&cfg.target, "target", "", "loadgen target base URL (empty = spin up an in-process server)")
	flag.IntVar(&cfg.requests, "requests", 300, "loadgen: total requests (dynamic mode: total events)")
	flag.IntVar(&cfg.rps, "rps", 0, "loadgen: request rate (0 = unthrottled)")
	flag.Float64Var(&cfg.dupFrac, "dup-frac", 0.5, "loadgen: fraction of requests that repeat the hot instance")
	flag.IntVar(&cfg.conc, "conc", 8, "loadgen: concurrent clients")

	flag.BoolVar(&cfg.dynamic, "dynamic", false, "loadgen: drive live-session churn against /v1/sessions instead of /v1/solve")
	flag.IntVar(&cfg.sessions, "sessions", 4, "dynamic loadgen: concurrent live sessions")
	flag.IntVar(&cfg.eventBatch, "event-batch", 4, "dynamic loadgen: events per POST")
	flag.StringVar(&cfg.trace, "trace", "", "dynamic loadgen: replay a datagen -events trace file into every session (empty = generate churn)")
	flag.Parse()

	if cfg.loadgen && cfg.dynamic {
		return runDynamicLoadgen(cfg)
	}
	if cfg.loadgen {
		return runLoadgen(cfg)
	}
	return serve(cfg)
}

// newApp builds the engine + session manager + server triple from flags. The
// caller shuts the server down, then closes the manager, then the engine.
func newApp(cfg config) (*svgic.Engine, *session.Manager, *server.Server, error) {
	algo := cfg.algo
	if i := strings.IndexByte(algo, ','); i >= 0 {
		algo = algo[:i] // loadgen mixes; the in-process server defaults to the first
	}
	newSolver, params, err := pickSolver(algo, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	eng := svgic.NewEngine(svgic.EngineOptions{
		Workers:   cfg.workers,
		CacheSize: cfg.cache,
		NewSolver: newSolver,
	})
	mgr, err := session.NewManager(session.Options{
		Engine:         eng,
		MaxSessions:    cfg.maxSessions,
		TTL:            cfg.sessionTTL,
		RepairInterval: cfg.repairInterval,
		RepairMargin:   cfg.repairMargin,
	})
	if err != nil {
		eng.Close()
		return nil, nil, nil, err
	}
	srv, err := server.New(server.Options{
		Engine: eng,
		// Same name AND same flag-derived params as the engine default, so a
		// request saying {"algo": "<default>"} resolves the identical solver
		// (and shares cache entries with bare requests).
		DefaultAlgo:    algo,
		DefaultParams:  params,
		MaxInFlight:    cfg.maxInFlight,
		DefaultTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTimeout,
		MaxBatch:       cfg.maxBatch,
		NoCoalesce:     cfg.noCoalesce,
		Sessions:       mgr,
	})
	if err != nil {
		mgr.Close()
		eng.Close()
		return nil, nil, nil, err
	}
	return eng, mgr, srv, nil
}

// pickSolver resolves the default solver from the registry, mapping the
// daemon's flags onto whichever parameters the solver's schema declares,
// and returns the parameters too (the server needs them so explicit
// {"algo": default} requests resolve identically). The flag help and the
// unknown-algorithm error are both derived from the registry, so a newly
// registered solver is reachable without touching this file.
func pickSolver(algo string, cfg config) (func() svgic.Solver, svgic.Params, error) {
	spec, ok := svgic.LookupSolver(algo)
	if !ok {
		return nil, nil, fmt.Errorf("unknown algorithm %q (want one of: %s)",
			algo, strings.Join(svgic.SolverNames(), ", "))
	}
	params := svgic.Params{}
	for _, p := range spec.Params {
		switch p.Name {
		case "seed":
			params["seed"] = cfg.seed
		case "sizeCap":
			if cfg.sizeCap > 0 {
				params["sizeCap"] = cfg.sizeCap
			}
		}
	}
	// Validate once up front so a bad flag combination fails at startup, not
	// on the first request.
	if _, err := svgic.NewSolver(spec.Name, params); err != nil {
		return nil, nil, err
	}
	return func() svgic.Solver {
		s, err := svgic.NewSolver(spec.Name, params)
		if err != nil {
			panic(err) // validated above; cannot fail
		}
		return s
	}, params, nil
}

func serve(cfg config) error {
	if strings.ContainsRune(cfg.algo, ',') {
		return fmt.Errorf("-algo %q: comma-separated lists are loadgen-only; serve mode takes one default algorithm", cfg.algo)
	}
	eng, mgr, app, err := newApp(cfg)
	if err != nil {
		return err
	}
	defer eng.Close()
	defer mgr.Close()

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           app,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "svgicd: serving on %s (workers=%d cache=%d algo=%s max-inflight=%d max-sessions=%d repair=%s)\n",
		cfg.addr, eng.Stats().Workers, cfg.cache, cfg.algo, app.StatsSnapshot().Server.MaxInFlight,
		cfg.maxSessions, cfg.repairInterval)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight solves, then (via
	// the deferred Close) release the engine's worker pool.
	fmt.Fprintln(os.Stderr, "svgicd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := app.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "svgicd: drained cleanly")
	return nil
}
