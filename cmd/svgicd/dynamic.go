package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	svgic "github.com/svgic/svgic"
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/server"
	"github.com/svgic/svgic/internal/session"
)

// The dynamic load generator (-loadgen -dynamic) drives the live-session
// endpoints the way a fleet of VR stores would: it creates -sessions
// concurrent sessions, streams join/leave/updatePreference/rebalance churn
// at each in batches of -event-batch, then reads every session back and
// deletes them. Each session's responses must be 2xx (429 admission shedding
// tolerated) with strictly monotone versions — a version that stalls or
// regresses means the serialized event path lost an event, and the run
// fails. With -trace it instead replays a datagen-recorded event trace into
// every session, which is what `make session-smoke` does in CI. The report
// shows create/event latency percentiles and the server's sessions and
// drift-repair counters.

// dynamicSessionPlan is one session's workload: the starting instance and
// the event stream to feed it.
type dynamicSessionPlan struct {
	instance core.InstanceJSON
	sizeCap  int
	algo     string
	events   []session.Event
}

// dynamicShot is one timed request against the session endpoints.
type dynamicShot struct {
	kind    string // "create", "events", "get", "delete"
	status  int
	latency time.Duration
	err     error
}

func runDynamicLoadgen(cfg config) error {
	algos := strings.Split(cfg.algo, ",")
	for _, a := range algos {
		if _, ok := svgic.LookupSolver(a); !ok {
			return fmt.Errorf("unknown algorithm %q (want one of: %s)", a, strings.Join(svgic.SolverNames(), ", "))
		}
	}
	if cfg.sessions <= 0 {
		return fmt.Errorf("-sessions %d must be positive", cfg.sessions)
	}
	if cfg.eventBatch <= 0 {
		return fmt.Errorf("-event-batch %d must be positive", cfg.eventBatch)
	}

	plans, err := dynamicPlans(cfg, algos)
	if err != nil {
		return err
	}

	base, cleanup, err := targetOrInProcess(cfg)
	if err != nil {
		return err
	}
	defer cleanup()

	// With drift repair enabled, let each session sit for one repair
	// interval after its event stream before the final read: a fast replay
	// would otherwise finish under the first tick and the report would show
	// zero repair cycles.
	var settle time.Duration
	if cfg.repairInterval > 0 {
		settle = cfg.repairInterval + cfg.repairInterval/2
	}

	client := &http.Client{Timeout: 2 * cfg.maxTimeout}
	results := make(chan []dynamicShot, len(plans))
	start := time.Now()
	var wg sync.WaitGroup
	for i := range plans {
		plan := plans[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			shots, err := driveSession(client, base, cfg.eventBatch, settle, plan)
			if err != nil {
				shots = append(shots, dynamicShot{err: err})
			}
			results <- shots
		}()
	}
	var shots []dynamicShot
	for range plans {
		shots = append(shots, <-results...)
	}
	wg.Wait()
	wall := time.Since(start)

	// Report.
	statuses := make(map[int]int)
	lats := make(map[string][]time.Duration)
	bad := 0
	for _, sh := range shots {
		if sh.err != nil {
			fmt.Fprintf(os.Stderr, "dynamic loadgen: %v\n", sh.err)
			bad++
			continue
		}
		statuses[sh.status]++
		if sh.status < 300 {
			lats[sh.kind] = append(lats[sh.kind], sh.latency)
		} else if sh.status != http.StatusTooManyRequests {
			bad++
		}
	}
	total := 0
	for _, n := range statuses {
		total += n
	}
	fmt.Printf("dynamic loadgen: %d sessions, %d requests in %v (%.1f req/s), event-batch=%d algos=%s\n",
		len(plans), total, wall.Round(time.Millisecond), float64(total)/wall.Seconds(),
		cfg.eventBatch, strings.Join(algos, ","))
	fmt.Printf("status:")
	for _, code := range sortedKeys(statuses) {
		fmt.Printf(" %d×%d", code, statuses[code])
	}
	fmt.Println()
	for _, kind := range []string{"create", "events", "get", "delete"} {
		ls := lats[kind]
		if len(ls) == 0 {
			continue
		}
		p50, p90, p99, max := pctiles(ls)
		fmt.Printf("%-7s latency: n=%d p50=%v p90=%v p99=%v max=%v\n",
			kind, len(ls), p50, p90, p99, max)
	}
	if _, err := printServerStats(client, base); err != nil {
		fmt.Fprintf(os.Stderr, "dynamic loadgen: stats fetch failed: %v\n", err)
		bad++
	}
	if bad > 0 {
		return fmt.Errorf("%d session requests failed", bad)
	}
	return nil
}

// dynamicPlans builds the per-session workloads: either -trace replayed into
// every session, or generated churn over small multi-component stores, with
// sessions cycling the -algo mix.
func dynamicPlans(cfg config, algos []string) ([]dynamicSessionPlan, error) {
	plans := make([]dynamicSessionPlan, cfg.sessions)
	if cfg.trace != "" {
		data, err := os.ReadFile(cfg.trace)
		if err != nil {
			return nil, err
		}
		var trace session.TraceJSON
		if err := json.Unmarshal(data, &trace); err != nil {
			return nil, fmt.Errorf("decoding trace %s: %w", cfg.trace, err)
		}
		if err := trace.Validate(); err != nil {
			return nil, fmt.Errorf("trace %s: %w", cfg.trace, err)
		}
		fmt.Fprintf(os.Stderr, "dynamic loadgen: replaying %s (%d users, %d events) into %d session(s)\n",
			cfg.trace, trace.Instance.Users, len(trace.Events), cfg.sessions)
		for i := range plans {
			plans[i] = dynamicSessionPlan{
				instance: trace.Instance,
				sizeCap:  trace.SizeCap,
				algo:     algos[i%len(algos)],
				events:   trace.Events,
			}
		}
		return plans, nil
	}
	perSession := cfg.requests / cfg.sessions
	if perSession < 1 {
		perSession = 1
	}
	// Instance and churn seeds both derive from -seed, so two loadgen runs
	// with the same flags drive byte-identical workloads — what the
	// crash-smoke's offline-replay verification and reproducible CI runs
	// rely on.
	for i := range plans {
		in := datasets.MultiGroup(cfg.seed+uint64(300+i), 2, 4, 12, 2, 0.5)
		plans[i] = dynamicSessionPlan{
			instance: *core.InstanceAsJSON(in),
			algo:     algos[i%len(algos)],
			events:   session.GenerateEvents(in.NumUsers(), in.NumItems, perSession, cfg.seed+uint64(700+i)),
		}
	}
	return plans, nil
}

// shed429Retries bounds how often the loadgen re-offers a request shed with
// 429 before abandoning the session. 429 is the admission controller doing
// its job and never fails the run (the contract shared with the solve
// loadgen); retrying instead of dropping keeps event traces intact — a
// skipped batch would orphan later events that reference its joined users.
const shed429Retries = 40

// retry429 re-issues shot() while it returns 429, recording every attempt
// in shots. It reports whether the request eventually got through.
func retry429(shots *[]dynamicShot, shot func() dynamicShot) (dynamicShot, bool) {
	for attempt := 0; ; attempt++ {
		sh := shot()
		*shots = append(*shots, sh)
		if sh.status != http.StatusTooManyRequests {
			return sh, true
		}
		if attempt >= shed429Retries {
			return sh, false
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// driveSession runs one session's full lifecycle: create, stream the event
// batches (asserting strictly monotone versions), wait out the settle
// window so drift repair gets a look, read the session back and delete it.
// Persistent 429 shedding abandons the session gracefully — recorded in the
// status report, but not an error.
func driveSession(client *http.Client, base string, batchSize int, settle time.Duration, plan dynamicSessionPlan) ([]dynamicShot, error) {
	var shots []dynamicShot

	createBody, err := json.Marshal(server.CreateSessionRequest{
		InstanceJSON: plan.instance,
		Algo:         plan.algo,
		SizeCap:      plan.sizeCap,
	})
	if err != nil {
		return shots, err
	}
	var created server.CreateSessionResponse
	sh, ok := retry429(&shots, func() dynamicShot {
		sh := shootJSON(client, http.MethodPost, base+"/v1/sessions", createBody, &created)
		sh.kind = "create"
		return sh
	})
	if !ok {
		return shots, nil // shed throughout: tolerated, session skipped
	}
	if sh.err != nil || sh.status != http.StatusCreated {
		return shots, fmt.Errorf("create session: status %d, err %v", sh.status, sh.err)
	}

	version := created.Version
	for at := 0; at < len(plan.events); at += batchSize {
		end := at + batchSize
		if end > len(plan.events) {
			end = len(plan.events)
		}
		body, err := json.Marshal(server.SessionEventsRequest{Events: plan.events[at:end]})
		if err != nil {
			return shots, err
		}
		var resp server.SessionEventsResponse
		sh, ok := retry429(&shots, func() dynamicShot {
			sh := shootJSON(client, http.MethodPost, base+"/v1/sessions/"+created.ID+"/events", body, &resp)
			sh.kind = "events"
			return sh
		})
		if !ok {
			return shots, nil // shed throughout: tolerated, session abandoned
		}
		if sh.err != nil || sh.status != http.StatusOK {
			return shots, fmt.Errorf("session %s events[%d:%d]: status %d, err %v",
				created.ID, at, end, sh.status, sh.err)
		}
		// The wire contract under test: every applied event advances the
		// version by one; drift-repair swaps in between only push it further.
		if want := version + uint64(len(resp.Results)); resp.Version < want {
			return shots, fmt.Errorf("session %s: version %d after %d events on version %d (want ≥ %d)",
				created.ID, resp.Version, len(resp.Results), version, want)
		}
		version = resp.Version
	}

	if settle > 0 {
		time.Sleep(settle)
	}

	var got server.SessionResponse
	sh, ok = retry429(&shots, func() dynamicShot {
		sh := shootJSON(client, http.MethodGet, base+"/v1/sessions/"+created.ID, nil, &got)
		sh.kind = "get"
		return sh
	})
	if !ok {
		return shots, nil
	}
	if sh.err != nil || sh.status != http.StatusOK {
		return shots, fmt.Errorf("get session %s: status %d, err %v", created.ID, sh.status, sh.err)
	}
	if got.Version < version {
		return shots, fmt.Errorf("session %s: GET version %d below last event version %d", created.ID, got.Version, version)
	}

	sh, ok = retry429(&shots, func() dynamicShot {
		sh := shootJSON(client, http.MethodDelete, base+"/v1/sessions/"+created.ID, nil, nil)
		sh.kind = "delete"
		return sh
	})
	if !ok {
		return shots, nil
	}
	if sh.err != nil || sh.status != http.StatusNoContent {
		return shots, fmt.Errorf("delete session %s: status %d, err %v", created.ID, sh.status, sh.err)
	}
	return shots, nil
}

// shootJSON issues one request, decoding a 2xx response body into out (when
// given) and draining anything else.
func shootJSON(client *http.Client, method, url string, body []byte, out any) dynamicShot {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return dynamicShot{err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return dynamicShot{err: err}
	}
	defer resp.Body.Close()
	sh := dynamicShot{status: resp.StatusCode, latency: time.Since(t0)}
	if resp.StatusCode < 300 && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			sh.err = err
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return sh
}
