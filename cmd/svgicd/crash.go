package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	svgic "github.com/svgic/svgic"
	"github.com/svgic/svgic/internal/server"
)

// Crash mode (-loadgen -dynamic -crash): the durability acceptance test as
// a CLI. It spawns a REAL child svgicd process serving on -data-dir, drives
// live-session churn at it, SIGKILLs the child mid-stream — no drain, no
// flush, the genuine article — restarts it on the same data directory, and
// verifies every recovered session against an offline replay:
//
//	recovered (version, value, configuration)
//	  == session.Replay(initial solve, events[:version])
//
// The recovered version may trail the acknowledged one (an acknowledged
// event's durability is bounded by the fsync policy and the writer queue —
// that is the documented contract), and may even lead it (a batch can be
// applied and persisted after the kill severed the response); what crash
// mode proves is PREFIX CONSISTENCY: whatever version came back, the state
// is bit-for-bit the deterministic replay of exactly that many events,
// under every fsync policy. Drift repair is forced off in the child because
// repair swaps are not reproducible by offline event replay (they are
// logged as adopt records and covered by the Go e2e tests instead).

// crashProgress tracks one session's acknowledged progress.
type crashProgress struct {
	plan    dynamicSessionPlan
	id      string
	created bool
	acked   uint64 // last acknowledged version
}

func runCrashLoadgen(cfg config) error {
	if cfg.dataDir == "" {
		return fmt.Errorf("-crash requires -data-dir")
	}
	if cfg.target != "" {
		return fmt.Errorf("-crash spawns its own child server; -target is not supported")
	}
	if cfg.repairInterval != 0 {
		return fmt.Errorf("-crash verifies against offline event replay, which drift repair would diverge from; drop -repair-interval")
	}
	algo := cfg.algo
	if i := strings.IndexByte(algo, ','); i >= 0 {
		algo = algo[:i] // offline verification re-solves with the child's default
	}
	if _, ok := svgic.LookupSolver(algo); !ok {
		return fmt.Errorf("unknown algorithm %q (want one of: %s)", algo, strings.Join(svgic.SolverNames(), ", "))
	}
	plans, err := dynamicPlans(cfg, []string{algo})
	if err != nil {
		return err
	}
	totalEvents := 0
	for _, p := range plans {
		totalEvents += len(p.events)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	child, err := spawnChild(cfg, addr)
	if err != nil {
		return err
	}
	defer func() {
		if child != nil && child.Process != nil {
			_ = child.Process.Kill()
			_ = child.Wait()
		}
	}()
	if err := waitHealthy(client, base, 15*time.Second); err != nil {
		return fmt.Errorf("child svgicd never became healthy: %w", err)
	}

	// Drive churn concurrently; SIGKILL once half the planned events are
	// acknowledged (or everything finished early — tiny workloads still get
	// a restart+verify pass).
	var ackedTotal atomic.Uint64
	killAt := uint64(totalEvents / 2)
	if killAt == 0 {
		killAt = 1
	}
	killed := make(chan struct{})
	progress := make([]*crashProgress, len(plans))
	var wg sync.WaitGroup
	for i := range plans {
		progress[i] = &crashProgress{plan: plans[i]}
		wg.Add(1)
		go func(p *crashProgress) {
			defer wg.Done()
			driveUntilKilled(client, base, cfg.eventBatch, p, &ackedTotal, killed)
		}(progress[i])
	}
	done := make(chan struct{})
	// The joiner converts wg.Wait into a selectable signal so the kill loop
	// below can poll progress while waiting. Contract: every tracked worker
	// returns once `killed` closes (driveUntilKilled selects on it), so Wait
	// is bounded and the `<-done` at the end of this function joins the
	// joiner itself before returning.
	//lint:ignore goleak wait-to-channel adapter joined via <-done below; workers exit when killed closes
	go func() { wg.Wait(); close(done) }()

	killTick := time.NewTicker(5 * time.Millisecond)
	defer killTick.Stop()
waitKill:
	for {
		select {
		case <-done:
			break waitKill
		case <-killTick.C:
			if ackedTotal.Load() >= killAt {
				break waitKill
			}
		}
	}
	fmt.Fprintf(os.Stderr, "crash: SIGKILL after %d/%d acked events\n", ackedTotal.Load(), totalEvents)
	if err := child.Process.Kill(); err != nil {
		return fmt.Errorf("killing child: %w", err)
	}
	close(killed)
	<-done
	_ = child.Wait() // expected: killed
	child = nil

	// Restart on the same data directory; recovery runs before the listener
	// accepts, so the first healthz already reflects the recovered state.
	fmt.Fprintln(os.Stderr, "crash: restarting child on the same -data-dir")
	child, err = spawnChild(cfg, addr)
	if err != nil {
		return err
	}
	if err := waitHealthy(client, base, 15*time.Second); err != nil {
		return fmt.Errorf("restarted svgicd never became healthy: %w", err)
	}

	// Verify every session that was acknowledged as created.
	verified, lost, bad := 0, 0, 0
	for _, p := range progress {
		if !p.created {
			continue
		}
		var got server.SessionResponse
		sh := shootJSON(client, http.MethodGet, base+"/v1/sessions/"+p.id, nil, &got)
		if sh.err != nil {
			return fmt.Errorf("reading recovered session %s: %w", p.id, sh.err)
		}
		if sh.status == http.StatusNotFound {
			// The creation image was still in the writer queue at the kill:
			// lost, as the fsync/queue contract allows. Count it — a smoke
			// run that loses everything proves nothing and fails below.
			lost++
			fmt.Fprintf(os.Stderr, "crash: session %s (acked v%d) not recovered — creation image lost in the kill window\n", p.id, p.acked)
			continue
		}
		if sh.status != http.StatusOK {
			return fmt.Errorf("reading recovered session %s: status %d", p.id, sh.status)
		}
		if err := verifyAgainstReplay(cfg, algo, p, &got); err != nil {
			bad++
			fmt.Fprintf(os.Stderr, "crash: session %s FAILED verification: %v\n", p.id, err)
			continue
		}
		verified++
		fmt.Printf("crash: session %s recovered at v%d (acked v%d): matches offline replay of %d events\n",
			p.id, got.Version, p.acked, got.Version)
	}

	if _, err := printServerStats(client, base); err != nil {
		fmt.Fprintf(os.Stderr, "crash: stats fetch failed: %v\n", err)
	}
	fmt.Printf("crash: verified=%d lost=%d failed=%d (fsync=%s, %d/%d events acked before SIGKILL)\n",
		verified, lost, bad, cfg.fsync, ackedTotal.Load(), totalEvents)
	if bad > 0 {
		return fmt.Errorf("%d recovered session(s) diverged from offline replay", bad)
	}
	if verified == 0 {
		return fmt.Errorf("no session survived the crash — the smoke proved nothing (lost=%d)", lost)
	}
	return nil
}

// driveUntilKilled runs one session's create + event stream, recording
// acknowledged progress. Transport errors after the kill are the expected
// end of the run; before it, they fail loudly via stderr (and the session
// simply stops making progress, which verification tolerates).
func driveUntilKilled(client *http.Client, base string, batchSize int, p *crashProgress, ackedTotal *atomic.Uint64, killed chan struct{}) {
	stopped := func() bool {
		select {
		case <-killed:
			return true
		default:
			return false
		}
	}
	createBody, err := json.Marshal(server.CreateSessionRequest{
		InstanceJSON: p.plan.instance,
		SizeCap:      p.plan.sizeCap,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash: marshal create: %v\n", err)
		return
	}
	var created server.CreateSessionResponse
	sh := shootJSON(client, http.MethodPost, base+"/v1/sessions", createBody, &created)
	if sh.err != nil || sh.status != http.StatusCreated {
		if !stopped() {
			fmt.Fprintf(os.Stderr, "crash: create failed: status %d err %v\n", sh.status, sh.err)
		}
		return
	}
	p.id = created.ID
	p.created = true

	for at := 0; at < len(p.plan.events); at += batchSize {
		end := at + batchSize
		if end > len(p.plan.events) {
			end = len(p.plan.events)
		}
		body, err := json.Marshal(server.SessionEventsRequest{Events: p.plan.events[at:end]})
		if err != nil {
			fmt.Fprintf(os.Stderr, "crash: marshal events: %v\n", err)
			return
		}
		var resp server.SessionEventsResponse
		sh := shootJSON(client, http.MethodPost, base+"/v1/sessions/"+p.id+"/events", body, &resp)
		if sh.err != nil || sh.status != http.StatusOK {
			if !stopped() {
				fmt.Fprintf(os.Stderr, "crash: session %s events[%d:%d]: status %d err %v\n", p.id, at, end, sh.status, sh.err)
			}
			return
		}
		p.acked = resp.Version
		ackedTotal.Add(uint64(end - at))
	}
}

// verifyAgainstReplay checks one recovered session against the ground
// truth: solve the plan's instance the way the child's engine did, replay
// exactly got.Version events through the shared Apply semantics, and
// compare value and configuration bit for bit.
func verifyAgainstReplay(cfg config, algo string, p *crashProgress, got *server.SessionResponse) error {
	n := got.Version
	if n > uint64(len(p.plan.events)) {
		return fmt.Errorf("recovered version %d exceeds the %d events ever sent", n, len(p.plan.events))
	}
	newSolver, params, err := pickSolver(algo, cfg)
	if err != nil {
		return err
	}
	in, err := svgic.InstanceFromJSON(&p.plan.instance)
	if err != nil {
		return err
	}
	// The child's create path solved through its engine (same default
	// solver factory, component decomposition included), so the offline
	// baseline must too — a direct solver call can legally produce a
	// different optimal assignment on multi-component instances.
	eng := svgic.NewEngine(svgic.EngineOptions{Workers: 2, NewSolver: newSolver})
	defer eng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var sol *svgic.Solution
	if p.plan.sizeCap > 0 {
		params["sizeCap"] = p.plan.sizeCap
		solver, err := svgic.NewSolver(algo, params)
		if err != nil {
			return err
		}
		sol, err = eng.SolveWith(ctx, in, solver)
		if err != nil {
			return err
		}
	} else {
		sol, err = eng.Solve(ctx, in)
		if err != nil {
			return err
		}
	}
	ds, err := svgic.NewDynamicSession(in, sol.Config, p.plan.sizeCap)
	if err != nil {
		return err
	}
	if applied, err := svgic.ReplaySessionEvents(ds, p.plan.events[:n]); err != nil {
		return fmt.Errorf("offline replay stopped at event %d: %w", applied, err)
	}
	if want := ds.Value(); got.Value != want {
		return fmt.Errorf("value %v != offline replay value %v at version %d", got.Value, want, n)
	}
	wantConf := ds.Config()
	if got.Slots != wantConf.K {
		return fmt.Errorf("slots %d != offline %d", got.Slots, wantConf.K)
	}
	if len(got.Assignment) != len(wantConf.Assign) {
		return fmt.Errorf("assignment rows %d != offline %d", len(got.Assignment), len(wantConf.Assign))
	}
	for u := range wantConf.Assign {
		for s := range wantConf.Assign[u] {
			if got.Assignment[u][s] != wantConf.Assign[u][s] {
				return fmt.Errorf("assignment[%d][%d] = %d != offline %d", u, s, got.Assignment[u][s], wantConf.Assign[u][s])
			}
		}
	}
	// Membership, not just count: a wrong active SET can coexist with a
	// matching value (departed users' rows are zeroed and contribute
	// nothing), but would diverge on the next join/leave. Both sides are
	// ascending.
	want := ds.ActiveUsers()
	if len(got.Active) != len(want) {
		return fmt.Errorf("active count %d != offline %d", len(got.Active), len(want))
	}
	for i := range want {
		if got.Active[i] != want[i] {
			return fmt.Errorf("active[%d] = %d != offline %d", i, got.Active[i], want[i])
		}
	}
	return nil
}

// freeAddr grabs an ephemeral localhost port for the child. (Classic tiny
// race between close and the child's bind; harmless at smoke scale.)
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr, nil
}

// spawnChild starts a serve-mode svgicd child on the crash data directory,
// forwarding the durability and solver flags so both incarnations (and the
// offline verifier) agree on the workload.
func spawnChild(cfg config, addr string) (*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	algo := cfg.algo
	if i := strings.IndexByte(algo, ','); i >= 0 {
		algo = algo[:i]
	}
	args := []string{
		"-addr", addr,
		"-workers", strconv.Itoa(cfg.workers),
		"-algo", algo,
		"-seed", strconv.FormatUint(cfg.seed, 10),
		"-max-sessions", strconv.Itoa(cfg.maxSessions),
		"-session-shards", strconv.Itoa(cfg.sessionShards), // restores must land on their owning shard at every shard count
		"-session-ttl", "0s", // an eviction tombstone mid-test would (correctly!) erase a session we still want to verify
		"-data-dir", cfg.dataDir,
		"-fsync", cfg.fsync,
		"-fsync-interval", cfg.fsyncInterval.String(),
		"-snapshot-every", strconv.Itoa(cfg.snapshotEvery),
	}
	if cfg.sizeCap > 0 {
		args = append(args, "-size-cap", strconv.Itoa(cfg.sizeCap))
	}
	child := exec.Command(self, args...)
	child.Stdout = os.Stderr
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		return nil, fmt.Errorf("spawning child svgicd: %w", err)
	}
	return child, nil
}

// waitHealthy polls /healthz until 200 or the deadline.
func waitHealthy(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return err
			}
			return fmt.Errorf("timed out")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
