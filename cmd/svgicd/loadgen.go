package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	svgic "github.com/svgic/svgic"
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/server"
	"github.com/svgic/svgic/internal/telemetry"
)

// The load generator drives /v1/solve with a mix of one "hot" instance
// (repeated with probability dup-frac — the flash-crowd shape that exercises
// coalescing and the result cache) and a pool of distinct instances (fresh
// solver work), then probes /v1/solve/batch, /v1/evaluate, /v1/algorithms
// and /healthz once each. -algo may name several solvers (comma-separated);
// requests cycle through them with an explicit "algo" field, exercising the
// per-algorithm cache/coalescing keys. It reports throughput, latency
// percentiles and the cache/coalesce counters from /v1/stats (split per
// algorithm when mixing), and fails on any response status other than 200
// or 429 — 429 is the admission controller doing its job, anything else is
// a serving bug.

// loadgenPoolSize is the number of distinct (non-hot) instances cycled by
// the generator.
const loadgenPoolSize = 16

type shot struct {
	status  int
	latency time.Duration
	err     error
}

// wrapAlgo rewraps a marshalled instance as a SolveRequest selecting the
// given algorithm.
func wrapAlgo(instance []byte, algo string) ([]byte, error) {
	var sr server.SolveRequest
	if err := json.Unmarshal(instance, &sr.InstanceJSON); err != nil {
		return nil, err
	}
	sr.Algo = algo
	return json.Marshal(sr)
}

func runLoadgen(cfg config) error {
	algos := strings.Split(cfg.algo, ",")
	for _, a := range algos {
		if _, ok := svgic.LookupSolver(a); !ok {
			return fmt.Errorf("unknown algorithm %q (want one of: %s)", a, strings.Join(svgic.SolverNames(), ", "))
		}
	}
	base, cleanup, err := targetOrInProcess(cfg)
	if err != nil {
		return err
	}
	defer cleanup()

	// One hot instance plus a pool of distinct ones, marshalled once per
	// algorithm in the mix (each request names its algorithm explicitly, so
	// the servers' cache and coalescing keys are exercised per algorithm).
	// The canonical multi-component serving workload: disjoint social rings
	// with synthetic utilities (see internal/datasets.MultiGroup).
	rawHot, err := core.MarshalInstance(datasets.MultiGroup(42, 3, 4, 12, 2, 0.5))
	if err != nil {
		return err
	}
	hotBy := make([][]byte, len(algos))
	for a, algo := range algos {
		if hotBy[a], err = wrapAlgo(rawHot, algo); err != nil {
			return err
		}
	}
	hot := hotBy[0]
	pool := make([][]byte, loadgenPoolSize)
	for i := range pool {
		raw, err := core.MarshalInstance(datasets.MultiGroup(uint64(100+i), 3, 4, 12, 2, 0.5))
		if err != nil {
			return err
		}
		if pool[i], err = wrapAlgo(raw, algos[i%len(algos)]); err != nil {
			return err
		}
	}

	client := &http.Client{Timeout: 2 * cfg.maxTimeout}
	indices := make(chan int)
	results := make(chan []shot, cfg.conc)
	var ticks <-chan time.Time
	if cfg.rps > 0 {
		t := time.NewTicker(time.Second / time.Duration(cfg.rps))
		defer t.Stop()
		ticks = t.C
	}

	start := time.Now()
	for w := 0; w < cfg.conc; w++ {
		go func() {
			var mine []shot
			for i := range indices {
				if ticks != nil {
					<-ticks
				}
				// Deterministic duplicate mix: request i repeats the hot
				// instance (cycling the algorithm mix) iff its residue falls
				// under dup-frac.
				body := hotBy[i%len(hotBy)]
				if float64(i%100) >= cfg.dupFrac*100 {
					body = pool[i%len(pool)]
				}
				mine = append(mine, post(client, base+"/v1/solve", body))
			}
			results <- mine
		}()
	}
	for i := 0; i < cfg.requests; i++ {
		indices <- i
	}
	close(indices)
	var shots []shot
	for w := 0; w < cfg.conc; w++ {
		shots = append(shots, <-results...)
	}
	wall := time.Since(start)

	// Single probes of the remaining surface: a batch with an internal
	// duplicate, an evaluate round-trip, algorithm discovery, and liveness.
	probeErr := probeOnce(client, base, rawHot, hot, pool[0])

	// Report.
	statuses := make(map[int]int)
	var lats []time.Duration
	bad := 0
	for _, sh := range shots {
		if sh.err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: transport error: %v\n", sh.err)
			bad++
			continue
		}
		statuses[sh.status]++
		if sh.status == http.StatusOK {
			lats = append(lats, sh.latency)
		}
		if sh.status != http.StatusOK && sh.status != http.StatusTooManyRequests {
			bad++
		}
	}
	fmt.Printf("loadgen: %d requests in %v (%.1f req/s), conc=%d dup-frac=%.2f rps-cap=%d algos=%s\n",
		cfg.requests, wall.Round(time.Millisecond), float64(cfg.requests)/wall.Seconds(), cfg.conc, cfg.dupFrac, cfg.rps,
		strings.Join(algos, ","))
	fmt.Printf("status:")
	for _, code := range sortedKeys(statuses) {
		fmt.Printf(" %d×%d", code, statuses[code])
	}
	fmt.Println()
	if len(lats) > 0 {
		p50, p90, p99, max := pctiles(lats)
		fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n", p50, p90, p99, max)
	}
	st, err := printServerStats(client, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: stats fetch failed: %v\n", err)
		bad++
	}

	if probeErr != nil {
		return fmt.Errorf("endpoint probe failed: %w", probeErr)
	}
	if bad > 0 {
		return fmt.Errorf("%d requests failed with a status other than 200/429", bad)
	}
	if cfg.assertSLODegrade {
		return assertSLODegrade(st)
	}
	return nil
}

// targetOrInProcess resolves the loadgen target: the -target base URL when
// given, otherwise a full in-process server (engine + session manager +
// HTTP) built from the same flags serve mode uses. The returned cleanup
// tears the in-process stack down in dependency order.
func targetOrInProcess(cfg config) (string, func(), error) {
	if cfg.target != "" {
		return cfg.target, func() {}, nil
	}
	a, err := newApp(cfg)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		a.close()
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: a.srv}
	// Contract: Serve returns as soon as the returned cleanup calls
	// httpSrv.Close (net/http's own lifecycle, invisible to the WaitGroup /
	// done-channel model); the loadgen process then exits with it joined.
	//lint:ignore goleak acceptor terminated by httpSrv.Close in the cleanup func below
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "loadgen: in-process server on %s\n", base)
	return base, func() {
		httpSrv.Close()
		a.close()
	}, nil
}

// post sends one JSON document and drains the response.
func post(client *http.Client, url string, body []byte) shot {
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return shot{err: err}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return shot{status: resp.StatusCode, latency: time.Since(t0)}
}

// probeOnce exercises the endpoints the solve storm does not touch. rawHot
// is the bare instance document; hot and other are SolveRequest bodies
// (possibly carrying "algo" fields).
func probeOnce(client *http.Client, base string, rawHot, hot, other []byte) error {
	// Batch with an internal duplicate: [hot, hot, other], preserving each
	// item's algorithm selection.
	var hj, oj server.SolveRequest
	if err := json.Unmarshal(hot, &hj); err != nil {
		return err
	}
	if err := json.Unmarshal(other, &oj); err != nil {
		return err
	}
	batch, err := json.Marshal([]server.SolveRequest{hj, hj, oj})
	if err != nil {
		return err
	}
	if sh := post(client, base+"/v1/solve/batch", batch); sh.err != nil || sh.status != http.StatusOK {
		return fmt.Errorf("batch probe: status %d, err %v", sh.status, sh.err)
	}

	// Evaluate a solved configuration for the hot instance.
	in, err := svgic.UnmarshalInstanceStrict(rawHot)
	if err != nil {
		return err
	}
	avgd, err := svgic.NewSolver("avgd", nil)
	if err != nil {
		return err
	}
	sol, err := avgd.Solve(context.Background(), in)
	if err != nil {
		return err
	}
	evalReq, err := json.Marshal(server.EvaluateRequest{
		Instance:      hj.InstanceJSON,
		Configuration: server.ConfigurationJSON{Slots: sol.Config.K, Assignment: sol.Config.Assign},
	})
	if err != nil {
		return err
	}
	if sh := post(client, base+"/v1/evaluate", evalReq); sh.err != nil || sh.status != http.StatusOK {
		return fmt.Errorf("evaluate probe: status %d, err %v", sh.status, sh.err)
	}

	// Algorithm discovery must list at least the registry's built-ins.
	resp, err := client.Get(base + "/v1/algorithms")
	if err != nil {
		return fmt.Errorf("algorithms probe: %w", err)
	}
	var ar server.AlgorithmsResponse
	err = json.NewDecoder(resp.Body).Decode(&ar)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(ar.Algorithms) < 7 {
		return fmt.Errorf("algorithms probe: status %d, %d algorithms, err %v", resp.StatusCode, len(ar.Algorithms), err)
	}

	resp, err = client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz probe: %w", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz probe: status %d", resp.StatusCode)
	}
	return nil
}

// printServerStats fetches /v1/stats, summarizes the serving-path counters
// the loadgen exists to demonstrate, and returns the decoded payload so
// callers can assert on it (-assert-slo-degrade).
func printServerStats(client *http.Client, base string) (*server.StatsResponse, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	e := st.Engine
	lookups := e.CacheHits + e.CacheMisses
	hitRate := 0.0
	if lookups > 0 {
		hitRate = 100 * float64(e.CacheHits) / float64(lookups)
	}
	fmt.Printf("engine: solves=%d solved=%d cacheHits=%d cacheMisses=%d hitRate=%.1f%% avgSolve=%.2fms workers=%d\n",
		e.Solves, e.Solved, e.CacheHits, e.CacheMisses, hitRate, e.AvgLatencyMS, e.Workers)
	if len(e.PerAlgorithm) > 0 {
		names := make([]string, 0, len(e.PerAlgorithm))
		for name := range e.PerAlgorithm {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			a := e.PerAlgorithm[name]
			fmt.Printf("engine[%s]: solves=%d solved=%d cacheHits=%d avgSolve=%.2fms\n",
				name, a.Solves, a.Solved, a.CacheHits, a.AvgLatencyMS)
		}
	}
	c := st.Coalesce
	collapsed := 0.0
	if c.Leads+c.Joins > 0 {
		collapsed = 100 * float64(c.Joins) / float64(c.Leads+c.Joins)
	}
	fmt.Printf("coalesce: enabled=%v leads=%d joins=%d (%.1f%% of coalesced traffic collapsed)\n",
		c.Enabled, c.Leads, c.Joins, collapsed)
	s := st.Server
	fmt.Printf("admission: admitted=%d shed=%d timeouts=%d clientClosed=%d badRequests=%d maxInFlight=%d\n",
		s.Admitted, s.Shed, s.Timeouts, s.ClientClosed, s.BadRequests, s.MaxInFlight)
	if ss := st.Sessions; ss.EventsApplied > 0 || ss.Created > 0 {
		fmt.Printf("sessions: live=%d created=%d evicted=%d rejected=%d events=%d (join=%d leave=%d update=%d rebalance=%d)\n",
			ss.Live, ss.Created, ss.Evicted, ss.Rejected, ss.EventsApplied, ss.Joins, ss.Leaves, ss.Updates, ss.Rebalances)
		swapRate := 0.0
		if done := ss.RepairSwaps + ss.RepairKeeps + ss.RepairStale; done > 0 {
			swapRate = 100 * float64(ss.RepairSwaps) / float64(done)
		}
		fmt.Printf("drift-repair: runs=%d swaps=%d keeps=%d stale=%d errors=%d (%.1f%% of completed cycles swapped)\n",
			ss.RepairRuns, ss.RepairSwaps, ss.RepairKeeps, ss.RepairStale, ss.RepairErrors, swapRate)
		if len(ss.PerShard) > 0 {
			// Routing imbalance: how unevenly the FNV-1a partition spread the
			// created sessions, as max-shard / mean-shard (1.00 = perfectly
			// uniform). Reported over created counts, not live — deletes and
			// evictions would mask a skewed router.
			var parts []string
			var total, maxCreated uint64
			for _, sp := range ss.PerShard {
				parts = append(parts, fmt.Sprintf("%d:%d", sp.Shard, sp.Created))
				total += sp.Created
				if sp.Created > maxCreated {
					maxCreated = sp.Created
				}
			}
			imbalance := 0.0
			if total > 0 {
				mean := float64(total) / float64(len(ss.PerShard))
				imbalance = float64(maxCreated) / mean
			}
			fmt.Printf("shards: n=%d created-per-shard=[%s] imbalance=%.2f (max/mean)\n",
				ss.Shards, strings.Join(parts, " "), imbalance)
		}
	}
	if slo := st.SLO; slo != nil {
		fmt.Printf("slo: adaptive=%v level=%s effectiveMaxInFlight=%d transitions=%d adaptiveShed=%d degraded=%d\n",
			slo.AdaptiveAdmission, slo.Level, slo.EffectiveMaxInFlight, slo.Transitions, slo.AdaptiveShed, slo.DegradedTotal)
		for _, o := range slo.Objectives {
			fmt.Printf("slo[%s]: state=%s fastBurn=%.2f slowBurn=%.2f observed=%.2fms samples=%d\n",
				o.Name, o.State, o.FastBurn, o.SlowBurn, o.ObservedMS, o.Samples)
		}
	}
	return &st, nil
}

// maxSLOTransitions bounds the ladder movement -assert-slo-degrade
// tolerates: an overload run should climb and come back down, not flap.
// Normal→degrade→shed→degrade→normal is 4; double it for headroom.
const maxSLOTransitions = 8

// assertSLODegrade checks that the run actually exercised the adaptive
// admission path: the server must expose an SLO controller, it must have
// degraded at least one request, and the ladder must not have flapped.
func assertSLODegrade(st *server.StatsResponse) error {
	if st == nil || st.SLO == nil {
		return fmt.Errorf("-assert-slo-degrade: server reports no SLO controller (serve it with -slo)")
	}
	slo := st.SLO
	if !slo.AdaptiveAdmission {
		return fmt.Errorf("-assert-slo-degrade: adaptive admission is disabled on the server")
	}
	if slo.DegradedTotal == 0 {
		return fmt.Errorf("-assert-slo-degrade: no request was degraded (transitions=%d level=%s); the objective never burned hard enough",
			slo.Transitions, slo.Level)
	}
	if slo.Transitions > maxSLOTransitions {
		return fmt.Errorf("-assert-slo-degrade: %d ladder transitions exceed the flap bound %d",
			slo.Transitions, maxSLOTransitions)
	}
	fmt.Printf("slo-assert: ok (degraded=%d transitions=%d level=%s)\n",
		slo.DegradedTotal, slo.Transitions, slo.Level)
	return nil
}

// pctiles summarizes one latency population through the same merging
// t-digest the server's telemetry windows use, replacing the hand-rolled
// nearest-rank percentile code the solve and dynamic loadgens each carried.
func pctiles(lats []time.Duration) (p50, p90, p99, max time.Duration) {
	d := telemetry.NewDigest(0)
	for _, l := range lats {
		d.Add(l.Seconds())
	}
	round := func(s float64) time.Duration {
		return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond)
	}
	return round(d.Quantile(0.5)), round(d.Quantile(0.9)), round(d.Quantile(0.99)), round(d.Max())
}

func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
