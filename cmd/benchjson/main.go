// Command benchjson converts `go test -bench` text output into a JSON
// artifact, so benchmark results can be committed and diffed as the repo's
// perf trajectory (BENCH_*.json files) instead of living only in CI logs.
//
//	go test ./internal/session -run '^$' -bench BenchmarkManagerSharded | benchjson -o BENCH_sessions.json
//
// Every input line is echoed to stderr, so piping through benchjson keeps
// the human-readable benchmark table in the terminal / CI log. The output
// is deterministic for identical input — no timestamps — so re-running a
// benchmark with unchanged performance produces a byte-identical artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: name, iteration count and the
// value-per-iteration metrics (ns/op, B/op, allocs/op, custom units). Pkg is
// set only when the input spans more than one package, so single-package
// artifacts stay byte-identical to what earlier versions produced.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the whole artifact: the run context go test prints before the
// benchmark table, plus every parsed result in input order. With
// single-package input Pkg names it once at the top; when several packages'
// tables are concatenated (e.g. `( go test ./a -bench … ; go test ./b -bench
// … ) | benchjson`), Pkg is left empty and each Result carries its own.
type Document struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (empty = stdout)")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	payload, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	payload = append(payload, '\n')
	if *out == "" {
		os.Stdout.Write(payload)
		return
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(doc.Benchmarks), *out)
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{}
	pkg := ""      // package of the table currently being read
	multi := false // input spans more than one package
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // tee: keep the table human-readable
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			if doc.Pkg == "" {
				doc.Pkg = pkg
			} else if doc.Pkg != pkg {
				multi = true
			}
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			res.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, *res)
		}
	}
	if multi {
		// Per-result attribution replaces the single header field.
		doc.Pkg = ""
	} else {
		for i := range doc.Benchmarks {
			doc.Benchmarks[i].Pkg = ""
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line of the standard bench format:
//
//	BenchmarkName-P  <iterations>  <value> <unit> [<value> <unit> ...]
func parseBenchLine(line string) (*Result, error) {
	fields := strings.Fields(line)
	// name, iterations, and at least one value-unit pair
	if len(fields) < 4 || len(fields)%2 != 0 {
		return nil, fmt.Errorf("malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("benchmark line %q: iterations: %w", line, err)
	}
	res := &Result{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64, (len(fields)-2)/2)}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("benchmark line %q: value %q: %w", line, fields[i], err)
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, nil
}
