package main

import (
	"bufio"
	"strings"
	"testing"
)

// TestParseSinglePackage pins the original artifact shape: one pkg header,
// no per-result Pkg fields — existing BENCH_*.json files must not change
// format just because multi-package input is now supported.
func TestParseSinglePackage(t *testing.T) {
	const input = `goos: linux
goarch: amd64
pkg: example.com/mod/internal/session
cpu: Fake CPU @ 1.00GHz
BenchmarkThing/shards=1-8   	     100	    12345 ns/op	     678 B/op	       9 allocs/op
BenchmarkThing/shards=4-8   	     200	     6000 ns/op
PASS
ok  	example.com/mod/internal/session	1.234s
`
	doc, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Pkg != "example.com/mod/internal/session" {
		t.Fatalf("doc.Pkg = %q", doc.Pkg)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	for _, r := range doc.Benchmarks {
		if r.Pkg != "" {
			t.Fatalf("single-package input set per-result Pkg %q on %s", r.Pkg, r.Name)
		}
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkThing/shards=1-8" || first.Iterations != 100 {
		t.Fatalf("first result = %+v", first)
	}
	if first.Metrics["ns/op"] != 12345 || first.Metrics["B/op"] != 678 || first.Metrics["allocs/op"] != 9 {
		t.Fatalf("first metrics = %v", first.Metrics)
	}
}

// TestParseMultiPackage covers concatenated tables from several `go test`
// runs: the header Pkg is dropped and every result carries its own package.
func TestParseMultiPackage(t *testing.T) {
	const input = `goos: linux
goarch: amd64
pkg: example.com/mod/internal/core
cpu: Fake CPU @ 1.00GHz
BenchmarkAlpha-8   	     100	    1000 ns/op
PASS
ok  	example.com/mod/internal/core	0.5s
goos: linux
goarch: amd64
pkg: example.com/mod/internal/session
cpu: Fake CPU @ 1.00GHz
BenchmarkBeta-8    	      50	    2000 ns/op
PASS
ok  	example.com/mod/internal/session	0.5s
`
	doc, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Pkg != "" {
		t.Fatalf("multi-package input kept header Pkg %q", doc.Pkg)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	if doc.Benchmarks[0].Pkg != "example.com/mod/internal/core" {
		t.Fatalf("first result pkg = %q", doc.Benchmarks[0].Pkg)
	}
	if doc.Benchmarks[1].Pkg != "example.com/mod/internal/session" {
		t.Fatalf("second result pkg = %q", doc.Benchmarks[1].Pkg)
	}
}

// TestParseMalformedLine keeps the strict-parse contract: a benchmark line
// that cannot be parsed fails the whole conversion rather than being dropped.
func TestParseMalformedLine(t *testing.T) {
	const input = `pkg: example.com/mod
BenchmarkBroken-8 not-a-number 1 ns/op
`
	if _, err := parse(bufio.NewScanner(strings.NewReader(input))); err == nil {
		t.Fatal("malformed line parsed without error")
	}
}
