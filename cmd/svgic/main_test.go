package main

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	svgic "github.com/svgic/svgic"
)

const exampleJSON = `{
  "users": 2, "items": 3, "slots": 2, "lambda": 0.5,
  "preferences": [[1, 0.5, 0], [0.9, 0.1, 0.2]],
  "social": [
    {"from": 0, "to": 1, "tau": [0.4, 0, 0]},
    {"from": 1, "to": 0, "tau": [0.3, 0, 0]}
  ]
}`

func TestBuildInstanceFromJSON(t *testing.T) {
	var ii inputInstance
	if err := json.Unmarshal([]byte(exampleJSON), &ii); err != nil {
		t.Fatal(err)
	}
	if ii.Users != 2 || ii.SizeCap != 0 {
		t.Fatalf("embedded schema mis-parsed: %+v", ii)
	}
	in, err := svgic.UnmarshalInstance([]byte(exampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if in.NumUsers() != 2 || in.NumItems != 3 || in.K != 2 {
		t.Fatalf("wrong shape: %d users, %d items, %d slots", in.NumUsers(), in.NumItems, in.K)
	}
	if got := in.Tau(0, 1, 0); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("τ(0,1,0) = %v", got)
	}
	sol, err := svgic.AVGD(svgic.AVGDOptions{}).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	conf := sol.Config
	rep := sol.Report
	// Both users co-display item 0 somewhere in the optimum: its joint value
	// (1 + 0.9 + 0.7 social) dominates.
	if !conf.CoDisplayed(0, 1, 0) {
		t.Errorf("expected co-display of item 0; got %v (value %.3f)", conf.Assign, rep.Scaled())
	}
}

func TestBuildInstanceRejectsBadInput(t *testing.T) {
	bad := []string{
		`{"users": 0, "items": 3, "slots": 1, "preferences": []}`,
		`{"users": 1, "items": 2, "slots": 1, "preferences": [[1]]}`,
		`{"users": 1, "items": 2, "slots": 1, "preferences": [[1, 0], [0, 1]]}`,
		`{"users": 2, "items": 1, "slots": 2, "preferences": [[1], [1]]}`, // k > m
	}
	for i, s := range bad {
		if _, err := svgic.UnmarshalInstance([]byte(s)); err == nil {
			t.Errorf("case %d accepted: %s", i, s)
		}
	}
}

// TestStrictDecodeRejectsMisspelledField: the CLI ingestion path must reject
// unknown fields — a tolerant json.Unmarshal silently dropped a typo like
// "preference" and solved a zero-utility instance.
func TestStrictDecodeRejectsMisspelledField(t *testing.T) {
	typo := `{
	  "users": 2, "items": 3, "slots": 2, "lambda": 0.5,
	  "preference": [[1, 0.5, 0], [0.9, 0.1, 0.2]]
	}`
	var ii inputInstance
	if err := svgic.DecodeStrict(strings.NewReader(typo), &ii); err == nil {
		t.Fatal(`misspelled "preference" accepted by the CLI decode path`)
	} else if !strings.Contains(err.Error(), "preference") {
		t.Errorf("error %q does not name the unknown field", err)
	}
	// The CLI's schema extensions (sizeCap, dtel) remain legal fields.
	ok := `{
	  "users": 1, "items": 2, "slots": 1, "lambda": 0,
	  "preferences": [[1, 0]], "sizeCap": 2, "dtel": 0.5
	}`
	if err := svgic.DecodeStrict(strings.NewReader(ok), &ii); err != nil {
		t.Fatalf("canonical input with CLI extensions rejected: %v", err)
	}
	if ii.SizeCap != 2 || ii.DTel != 0.5 {
		t.Fatalf("extensions mis-decoded: %+v", ii)
	}
	if _, err := svgic.InstanceFromJSON(&ii.InstanceJSON); err != nil {
		t.Fatalf("InstanceFromJSON on decoded input: %v", err)
	}
}

func TestPickSolver(t *testing.T) {
	for _, algo := range []string{"avg", "avgd", "per", "fmg", "sdp", "grf", "ip"} {
		s, err := pickSolver(algo, 1, 0.25, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if s == nil {
			t.Fatalf("%s: nil solver", algo)
		}
	}
	if _, err := pickSolver("bogus", 1, 0.25, 0, 0); err == nil {
		t.Error("bogus algorithm accepted")
	}
}
