package main

import (
	"encoding/json"
	"math"
	"testing"

	svgic "github.com/svgic/svgic"
)

const exampleJSON = `{
  "users": 2, "items": 3, "slots": 2, "lambda": 0.5,
  "preferences": [[1, 0.5, 0], [0.9, 0.1, 0.2]],
  "social": [
    {"from": 0, "to": 1, "tau": [0.4, 0, 0]},
    {"from": 1, "to": 0, "tau": [0.3, 0, 0]}
  ]
}`

func TestBuildInstanceFromJSON(t *testing.T) {
	var ii inputInstance
	if err := json.Unmarshal([]byte(exampleJSON), &ii); err != nil {
		t.Fatal(err)
	}
	if ii.Users != 2 || ii.SizeCap != 0 {
		t.Fatalf("embedded schema mis-parsed: %+v", ii)
	}
	in, err := svgic.UnmarshalInstance([]byte(exampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if in.NumUsers() != 2 || in.NumItems != 3 || in.K != 2 {
		t.Fatalf("wrong shape: %d users, %d items, %d slots", in.NumUsers(), in.NumItems, in.K)
	}
	if got := in.Tau(0, 1, 0); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("τ(0,1,0) = %v", got)
	}
	conf, _, err := svgic.SolveAVGD(in, svgic.AVGDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := svgic.Evaluate(in, conf)
	// Both users co-display item 0 somewhere in the optimum: its joint value
	// (1 + 0.9 + 0.7 social) dominates.
	if !conf.CoDisplayed(0, 1, 0) {
		t.Errorf("expected co-display of item 0; got %v (value %.3f)", conf.Assign, rep.Scaled())
	}
}

func TestBuildInstanceRejectsBadInput(t *testing.T) {
	bad := []string{
		`{"users": 0, "items": 3, "slots": 1, "preferences": []}`,
		`{"users": 1, "items": 2, "slots": 1, "preferences": [[1]]}`,
		`{"users": 1, "items": 2, "slots": 1, "preferences": [[1, 0], [0, 1]]}`,
		`{"users": 2, "items": 1, "slots": 2, "preferences": [[1], [1]]}`, // k > m
	}
	for i, s := range bad {
		if _, err := svgic.UnmarshalInstance([]byte(s)); err == nil {
			t.Errorf("case %d accepted: %s", i, s)
		}
	}
}

func TestPickSolver(t *testing.T) {
	for _, algo := range []string{"avg", "avgd", "per", "fmg", "sdp", "grf", "ip"} {
		s, err := pickSolver(algo, 1, 0.25, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if s == nil {
			t.Fatalf("%s: nil solver", algo)
		}
	}
	if _, err := pickSolver("bogus", 1, 0.25, 0, 0); err == nil {
		t.Error("bogus algorithm accepted")
	}
}
