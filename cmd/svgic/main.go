// Command svgic solves a single SVGIC instance read as JSON and prints the
// resulting SAVG k-Configuration with its utility report. The -algo flag
// accepts any solver registered in the svgic solver registry (avg, avgd,
// per, fmg, sdp, grf, ip, plus anything added via svgic.RegisterSolver);
// flags map onto the registry's parameter schema, so new solvers are
// reachable without touching this file.
//
// Usage:
//
//	svgic -algo avgd -input store.json
//	cat store.json | svgic -algo avg -seed 7 -json
//
// Input schema (see examples/quickstart for a generator):
//
//	{
//	  "users": 4, "items": 5, "slots": 3, "lambda": 0.5,
//	  "edges": [{"from": 0, "to": 1}, ...],
//	  "preferences": [[0.8, ...], ...],          // users × items
//	  "social": [{"from":0,"to":1,"tau":[...]}], // per directed edge, per item
//	  "sizeCap": 0,                              // optional SVGIC-ST cap M
//	  "dtel": 0                                  // optional teleport discount
//	}
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	svgic "github.com/svgic/svgic"
)

// inputInstance extends the library's interchange schema with the solve
// parameters of SVGIC-ST.
type inputInstance struct {
	svgic.InstanceJSON
	SizeCap int     `json:"sizeCap"`
	DTel    float64 `json:"dtel"`
}

type output struct {
	Algorithm  string  `json:"algorithm"`
	Assignment [][]int `json:"assignment"`
	Preference float64 `json:"preference"`
	Social     float64 `json:"social"`
	Weighted   float64 `json:"weighted"`
	Scaled     float64 `json:"scaled"`
	Violations int     `json:"sizeViolations,omitempty"`
	ElapsedMS  float64 `json:"elapsedMs"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "svgic:", err)
		os.Exit(1)
	}
}

func run() error {
	algo := flag.String("algo", "avgd", "algorithm: "+strings.Join(svgic.SolverNames(), "|"))
	input := flag.String("input", "-", "input JSON file ('-' = stdin)")
	seed := flag.Uint64("seed", 1, "random seed (solvers with a seed parameter)")
	r := flag.Float64("r", svgic.DefaultR, "balancing ratio (avgd)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of text")
	ipTimeout := flag.Duration("ip-timeout", 30*time.Second, "time limit for -algo ip")
	flag.Parse()

	raw, err := readInput(*input)
	if err != nil {
		return err
	}
	// Strict decode: an unknown field is a hard error, not a silent drop — a
	// typo like "preference" must not run the solver on zero utilities.
	var ii inputInstance
	if err := svgic.DecodeStrict(bytes.NewReader(raw), &ii); err != nil {
		return fmt.Errorf("parsing input: %w", err)
	}
	in, err := svgic.InstanceFromJSON(&ii.InstanceJSON)
	if err != nil {
		return err
	}
	solver, err := pickSolver(*algo, *seed, *r, ii.SizeCap, *ipTimeout)
	if err != nil {
		return err
	}
	sol, err := solver.Solve(context.Background(), in)
	if err != nil {
		return err
	}
	conf := sol.Config
	rep := svgic.EvaluateST(in, conf, ii.DTel)
	out := output{
		Algorithm:  sol.Algorithm,
		Assignment: conf.Assign,
		Preference: rep.Preference,
		Social:     rep.Social,
		Weighted:   rep.Weighted(),
		Scaled:     rep.Scaled(),
		ElapsedMS:  float64(sol.Wall.Microseconds()) / 1000,
	}
	if ii.SizeCap > 0 {
		out.Violations = conf.SizeViolations(ii.SizeCap)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("algorithm: %s (%.3fms)\n", out.Algorithm, out.ElapsedMS)
	fmt.Printf("objective: weighted=%.4f scaled=%.4f (preference %.4f, social %.4f)\n",
		out.Weighted, out.Scaled, out.Preference, out.Social)
	if ii.SizeCap > 0 {
		fmt.Printf("size-cap violations: %d (M=%d)\n", out.Violations, ii.SizeCap)
	}
	for u, row := range conf.Assign {
		fmt.Printf("user %2d:", u)
		for _, it := range row {
			fmt.Printf(" %3d", it)
		}
		fmt.Println()
	}
	return nil
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// pickSolver resolves the algorithm from the solver registry, mapping the
// CLI flags onto whichever parameters the chosen solver's schema declares —
// so a flag like -seed applies to every seeded solver and is ignored (not an
// error) for deterministic-by-construction ones.
func pickSolver(algo string, seed uint64, r float64, sizeCap int, ipTimeout time.Duration) (svgic.Solver, error) {
	spec, ok := svgic.LookupSolver(algo)
	if !ok {
		return nil, fmt.Errorf("unknown algorithm %q (want one of: %s)",
			algo, strings.Join(svgic.SolverNames(), ", "))
	}
	params := svgic.Params{}
	for _, p := range spec.Params {
		switch p.Name {
		case "seed":
			params["seed"] = seed
		case "r":
			params["r"] = r
		case "sizeCap":
			if sizeCap > 0 {
				params["sizeCap"] = sizeCap
			}
		case "timeLimit":
			params["timeLimit"] = ipTimeout
		}
	}
	return svgic.NewSolver(spec.Name, params)
}
