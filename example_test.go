package svgic_test

import (
	"context"
	"fmt"

	svgic "github.com/svgic/svgic"
)

// ExampleSolveAVGD solves a two-friend store with the deprecated one-shot
// wrapper (kept working; new code uses NewSolver/Solve(ctx)).
func ExampleSolveAVGD() {
	g := svgic.NewGraph(2)
	g.AddMutualEdge(0, 1)
	in := svgic.NewInstance(g, 3, 2, 0.5)
	// Both like item 0; user 0 also likes item 1, user 1 item 2.
	in.SetPref(0, 0, 0.9)
	in.SetPref(1, 0, 0.8)
	in.SetPref(0, 1, 0.7)
	in.SetPref(1, 2, 0.7)
	// Discussing item 0 together is valuable.
	_ = in.SetTau(0, 1, 0, 0.5)
	_ = in.SetTau(1, 0, 0, 0.5)

	//lint:ignore SA1019 the deprecated wrapper is exercised deliberately
	conf, _, err := svgic.SolveAVGD(in, svgic.AVGDOptions{})
	if err != nil {
		panic(err)
	}
	rep := svgic.Evaluate(in, conf)
	fmt.Printf("co-displayed item 0: %v\n", conf.CoDisplayed(0, 1, 0))
	fmt.Printf("preference %.2f social %.2f\n", rep.Preference, rep.Social)
	// Output:
	// co-displayed item 0: true
	// preference 3.10 social 1.00
}

// ExampleEvaluateST shows the teleportation discount for indirect co-display.
func ExampleEvaluateST() {
	g := svgic.NewGraph(2)
	g.AddMutualEdge(0, 1)
	in := svgic.NewInstance(g, 2, 2, 1) // social-only (λ=1)
	_ = in.SetTau(0, 1, 0, 0.4)
	_ = in.SetTau(1, 0, 0, 0.6)

	conf := svgic.NewConfiguration(2, 2)
	copy(conf.Assign[0], []int{0, 1}) // user 0: item 0 at slot 0
	copy(conf.Assign[1], []int{1, 0}) // user 1: item 0 at slot 1 → indirect

	fmt.Printf("indirect, d_tel=0.5: %.2f\n", svgic.EvaluateST(in, conf, 0.5).Weighted())
	svgic.AlignSlots(in, conf, 0.5, 0, 0) // align the shared item
	fmt.Printf("aligned:             %.2f\n", svgic.EvaluateST(in, conf, 0.5).Weighted())
	// Output:
	// indirect, d_tel=0.5: 0.50
	// aligned:             1.00
}

// ExampleSolver iterates the whole algorithm lineup uniformly.
func ExampleSolver() {
	in, err := svgic.GenerateDataset(svgic.Timik, 12, 20, 3, 0.5, 42)
	if err != nil {
		panic(err)
	}
	solvers := []svgic.Solver{
		svgic.AVGD(svgic.AVGDOptions{R: 1}),
		svgic.Personalized(),
	}
	best := ""
	bestVal := -1.0
	for _, s := range solvers {
		sol, err := s.Solve(context.Background(), in)
		if err != nil {
			panic(err)
		}
		if v := sol.Report.Weighted(); v > bestVal {
			bestVal, best = v, sol.Algorithm
		}
	}
	fmt.Println("winner:", best)
	// Output:
	// winner: AVG-D
}

// ExampleNewSolver resolves a solver from the registry by name — the same
// names the CLIs and the HTTP API accept.
func ExampleNewSolver() {
	in, err := svgic.GenerateDataset(svgic.Timik, 12, 20, 3, 0.5, 42)
	if err != nil {
		panic(err)
	}
	s, err := svgic.NewSolver("avgd", svgic.Params{"r": 1.0})
	if err != nil {
		panic(err)
	}
	sol, err := s.Solve(context.Background(), in)
	if err != nil {
		panic(err)
	}
	fmt.Println(sol.Algorithm, "components:", sol.Components)
	// Output:
	// AVG-D components: 1
}

// ExampleMarshalInstance round-trips an instance through JSON.
func ExampleMarshalInstance() {
	g := svgic.NewGraph(2)
	g.AddEdge(0, 1)
	in := svgic.NewInstance(g, 2, 1, 0.3)
	in.SetPref(0, 0, 1)
	_ = in.SetTau(0, 1, 0, 0.2)

	data, _ := svgic.MarshalInstance(in)
	back, _ := svgic.UnmarshalInstance(data)
	fmt.Printf("users=%d items=%d lambda=%.1f tau=%.1f\n",
		back.NumUsers(), back.NumItems, back.Lambda, back.Tau(0, 1, 0))
	// Output:
	// users=2 items=2 lambda=0.3 tau=0.2
}
